/**
 * @file
 * Tests for the deterministic parallel sweep substrate: the job-queue
 * thread pool, order-independent RunStats merging (the bug that blocked
 * parallelizing the figure sweeps), and bit-identity of sweep results
 * across worker counts and against the serial runner.  These run under
 * ThreadSanitizer in tier-1 (label: sweep).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>

#include "sim/sweep.hh"
#include "util/logging.hh"
#include "util/threadpool.hh"

using namespace replay;
using namespace replay::sim;

// ---------------------------------------------------------------- pool

TEST(ThreadPool, RunsEverySubmittedJob)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 1000; ++i)
        pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPool, WaitThenReuse)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 1);
    for (int i = 0; i < 10; ++i)
        pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 11);
}

TEST(ThreadPool, WaitOnIdlePoolReturns)
{
    ThreadPool pool(3);
    pool.wait();                        // nothing queued: no deadlock
    EXPECT_EQ(pool.numThreads(), 3u);
}

TEST(ParallelFor, FillsIndexedSlotsForAnyWorkerCount)
{
    for (const unsigned jobs : {1u, 2u, 7u}) {
        std::vector<size_t> slots(100, 0);
        parallelFor(jobs, slots.size(),
                    [&slots](size_t i) { slots[i] = i * i; });
        for (size_t i = 0; i < slots.size(); ++i)
            EXPECT_EQ(slots[i], i * i) << "jobs=" << jobs;
    }
}

// ------------------------------------------------- digest merge (bug)

namespace {

RunStats
statsWithDigest(uint64_t digest, uint64_t retired)
{
    RunStats s;
    s.archDigest = digest;
    s.archDigestValid = true;
    s.x86Retired = retired;
    return s;
}

} // anonymous namespace

TEST(RunStatsMerge, DigestIndependentOfMergeOrder)
{
    // Regression: the old fold (digest * FNV_PRIME ^ other) made the
    // merged digest depend on completion order, so a parallel sweep
    // would have produced nondeterministic digests.
    const RunStats a = statsWithDigest(0x1111111111111111ULL, 10);
    const RunStats b = statsWithDigest(0x2222222222222222ULL, 20);
    const RunStats c = statsWithDigest(0x3333333333333333ULL, 30);

    RunStats fwd;
    fwd.merge(a);
    fwd.merge(b);
    fwd.merge(c);

    RunStats rev;
    rev.merge(c);
    rev.merge(b);
    rev.merge(a);

    EXPECT_TRUE(fwd.archDigestValid);
    EXPECT_EQ(fwd.archDigest, rev.archDigest);
    EXPECT_EQ(fwd.x86Retired, rev.x86Retired);

    // Associativity: merging a pre-merged pair matches the linear fold.
    RunStats pair = a;
    pair.merge(b);
    RunStats grouped;
    grouped.merge(c);
    grouped.merge(pair);
    EXPECT_EQ(grouped.archDigest, fwd.archDigest);
}

TEST(RunStatsMerge, InvalidDigestDoesNotContaminate)
{
    RunStats merged;
    merged.merge(RunStats{});           // no digest yet
    EXPECT_FALSE(merged.archDigestValid);
    merged.merge(statsWithDigest(0xabcdULL, 5));
    EXPECT_TRUE(merged.archDigestValid);
    EXPECT_EQ(merged.archDigest, 0xabcdULL);
    merged.merge(RunStats{});           // invalid digest is a no-op
    EXPECT_EQ(merged.archDigest, 0xabcdULL);
}

TEST(RunStatsMerge, FingerprintCoversCounters)
{
    RunStats a = statsWithDigest(1, 100);
    RunStats b = statsWithDigest(1, 100);
    EXPECT_EQ(a.fingerprint(), b.fingerprint());
    b.uopsExecuted = 7;
    EXPECT_NE(a.fingerprint(), b.fingerprint());
}

// --------------------------------------------------------------- sweep

namespace {

std::vector<SweepCell>
smallGrid()
{
    // excel has three hot-spot traces — the multi-trace merge path is
    // exactly where order dependence would show.
    std::vector<SweepCell> cells;
    for (const char *name : {"gzip", "excel"}) {
        for (const Machine m : {Machine::IC, Machine::RPO}) {
            cells.push_back({&trace::findWorkload(name), machineName(m),
                             SimConfig::make(m)});
        }
    }
    return cells;
}

} // anonymous namespace

TEST(Sweep, BitIdenticalAcrossWorkerCounts)
{
    SweepOptions serial;
    serial.jobs = 1;
    serial.instsPerTrace = 8000;
    const auto one = runSweep(smallGrid(), serial);

    SweepOptions parallel4;
    parallel4.jobs = 4;
    parallel4.instsPerTrace = 8000;
    const auto four = runSweep(smallGrid(), parallel4);

    ASSERT_EQ(one.cells.size(), four.cells.size());
    for (size_t i = 0; i < one.cells.size(); ++i)
        EXPECT_EQ(one.cells[i].fingerprint(), four.cells[i].fingerprint())
            << one.cells[i].workload << "/" << one.cells[i].config;
    EXPECT_EQ(one.digest(), four.digest());
}

TEST(Sweep, MatchesSerialRunner)
{
    SweepOptions opts;
    opts.jobs = 4;
    opts.instsPerTrace = 8000;
    const auto sweep = runSweep(smallGrid(), opts);

    size_t i = 0;
    for (const char *name : {"gzip", "excel"}) {
        for (const Machine m : {Machine::IC, Machine::RPO}) {
            const RunStats serial = runWorkload(
                trace::findWorkload(name), SimConfig::make(m), 8000);
            EXPECT_EQ(sweep.cells[i].fingerprint(), serial.fingerprint())
                << name << "/" << machineName(m);
            ++i;
        }
    }
}

TEST(Sweep, ReportsThroughput)
{
    SweepOptions opts;
    opts.jobs = 2;
    opts.instsPerTrace = 2000;
    const auto result = runSweep(smallGrid(), opts);
    EXPECT_EQ(result.jobs, 2u);
    // gzip has 1 trace, excel 3; two configs each.
    EXPECT_EQ(result.traceRuns, 2u * (1u + 3u));
    EXPECT_GT(result.wallSeconds, 0.0);
    EXPECT_GT(result.totalInsts(), 0u);
    EXPECT_GT(result.instsPerSec(), 0.0);
    EXPECT_GT(result.cellsPerSec(), 0.0);
}

TEST(Sweep, RunAllMachinesMatchesRunWorkload)
{
    const auto &w = trace::findWorkload("crafty");
    const auto cells = runAllMachines(w, 8000);
    ASSERT_EQ(cells.size(), 4u);
    size_t i = 0;
    for (const Machine m :
         {Machine::IC, Machine::TC, Machine::RP, Machine::RPO}) {
        const auto serial = runWorkload(w, SimConfig::make(m), 8000);
        EXPECT_EQ(cells[i].fingerprint(), serial.fingerprint());
        ++i;
    }
}

// ------------------------------------------------------- jobs parsing

namespace {

[[noreturn]] void
throwingHandler(const char *, const char *, int, const char *message)
{
    throw std::runtime_error(message);
}

struct EnvGuard
{
    explicit EnvGuard(const char *name) : name_(name)
    {
        if (const char *old = getenv(name))
            saved_ = old;
    }
    ~EnvGuard()
    {
        if (saved_.empty())
            unsetenv(name_);
        else
            setenv(name_, saved_.c_str(), 1);
    }
    const char *name_;
    std::string saved_;
};

} // anonymous namespace

TEST(SweepJobs, EnvOverrideParsedStrictly)
{
    EnvGuard guard("REPLAY_SIM_JOBS");

    setenv("REPLAY_SIM_JOBS", "3", 1);
    EXPECT_EQ(defaultSweepJobs(), 3u);

    DeathHandler prev = setDeathHandler(throwingHandler);
    setenv("REPLAY_SIM_JOBS", "4e2", 1);
    EXPECT_THROW(defaultSweepJobs(), std::runtime_error);
    setenv("REPLAY_SIM_JOBS", "0", 1);
    EXPECT_THROW(defaultSweepJobs(), std::runtime_error);
    setenv("REPLAY_SIM_JOBS", "1000000", 1);
    EXPECT_THROW(defaultSweepJobs(), std::runtime_error);
    setDeathHandler(prev);

    unsetenv("REPLAY_SIM_JOBS");
    EXPECT_GE(defaultSweepJobs(), 1u);
}
