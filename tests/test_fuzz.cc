/**
 * @file
 * Differential fuzzing subsystem tests: generator determinism and
 * spec round-tripping, the headless frame machine, the oracle smoke
 * sweep (label fuzz-smoke), oracle non-vacuity under pass sabotage,
 * reducer search behaviour against synthetic predicates, and replay of
 * the committed regression corpus.
 */

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include <gtest/gtest.h>

#include "fuzz/difforacle.hh"
#include "fuzz/reducer.hh"
#include "sim/headless.hh"
#include "trace/tracer.hh"

using namespace replay;
using namespace replay::fuzz;

namespace {

OracleConfig
smokeConfig()
{
    OracleConfig cfg;
    cfg.maxInsts = 4000;
    return cfg;
}

} // anonymous namespace

// ---------------------------------------------------------------------
// Program generator
// ---------------------------------------------------------------------

TEST(Progen, RandomSpecIsDeterministic)
{
    const auto a = ProgramSpec::random(42);
    const auto b = ProgramSpec::random(42);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, ProgramSpec::random(43));
    EXPECT_GE(a.segments.size(), 6u);
    EXPECT_LE(a.segments.size(), 14u);
}

TEST(Progen, MaterializeIsDeterministic)
{
    const auto spec = ProgramSpec::random(7);
    const x86::Program p1 = spec.materialize();
    const x86::Program p2 = spec.materialize();
    ASSERT_EQ(p1.code().size(), p2.code().size());
    for (size_t i = 0; i < p1.code().size(); ++i) {
        EXPECT_EQ(p1.code()[i].addr, p2.code()[i].addr);
        EXPECT_EQ(p1.code()[i].inst, p2.code()[i].inst);
    }
    EXPECT_EQ(p1.entry(), p2.entry());
}

TEST(Progen, AllSegmentKindsReachable)
{
    std::set<SegKind> seen;
    for (uint64_t seed = 0; seed < 200; ++seed) {
        for (const Segment &seg : ProgramSpec::random(seed).segments)
            seen.insert(seg.kind);
    }
    EXPECT_EQ(seen.size(), size_t(SegKind::NUM_KINDS));
}

TEST(Progen, SerializeRoundTrips)
{
    const auto spec = ProgramSpec::random(123456789);
    const auto back = ProgramSpec::parse(spec.serialize());
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, spec);
}

TEST(Progen, ParseRejectsMalformedInput)
{
    EXPECT_FALSE(ProgramSpec::parse(""));
    EXPECT_FALSE(ProgramSpec::parse("progen-v2 1 ALU:2"));
    EXPECT_FALSE(ProgramSpec::parse("progen-v1 notanumber"));
    EXPECT_FALSE(ProgramSpec::parse("progen-v1 1 BOGUS:2"));
    EXPECT_FALSE(ProgramSpec::parse("progen-v1 1 ALU"));
    EXPECT_FALSE(ProgramSpec::parse("progen-v1 1 ALU:xy"));
}

TEST(Progen, GeneratedProgramsExecuteToBudget)
{
    // No fatal executor conditions (DIV faults, wild addresses) for
    // any seed: the program must fill the whole trace budget.
    for (uint64_t seed = 0; seed < 25; ++seed) {
        const auto prog = ProgramSpec::random(seed).materialize();
        const auto recs = trace::collectTrace(prog, 1500);
        EXPECT_EQ(recs.size(), 1500u) << "seed " << seed;
    }
}

// ---------------------------------------------------------------------
// Headless frame machine
// ---------------------------------------------------------------------

TEST(FrameMachine, RetiresBothConventionalAndFrameSteps)
{
    const auto prog = ProgramSpec::random(3).materialize();
    OracleConfig cfg = smokeConfig();
    sim::FrameMachine fm(prog, cfg.engine(), cfg.maxInsts);

    uint64_t conventional = 0, frames = 0, last_retired = 0;
    for (;;) {
        const sim::MachineStep step = fm.step();
        if (step.kind == sim::MachineStep::Kind::DONE)
            break;
        EXPECT_GE(step.retiredBefore, last_retired);
        last_retired = step.retiredBefore;
        if (step.kind == sim::MachineStep::Kind::FRAME) {
            ++frames;
            EXPECT_TRUE(step.bodyCommitted);
            EXPECT_EQ(step.span.size(), step.frame->pcs.size());
            EXPECT_GE(step.span.size(), 1u);
        } else {
            ++conventional;
        }
    }
    EXPECT_GT(conventional, 0u);
    EXPECT_GT(frames, 0u);
    EXPECT_GE(fm.retired(), cfg.maxInsts);
    EXPECT_EQ(fm.framesCommitted(), frames);
    EXPECT_EQ(fm.retired(), conventional + fm.frameInsts());
}

// ---------------------------------------------------------------------
// Differential oracle
// ---------------------------------------------------------------------

TEST(DiffOracle, CleanOnTunedWorkloadLikeProgram)
{
    const auto report = runOracle(ProgramSpec::random(1), smokeConfig());
    EXPECT_FALSE(report.diverged()) << report.div.detail;
    EXPECT_GT(report.framesCommitted, 0u);
    EXPECT_GT(report.storesCompared, 0u);
}

/** The 500-iteration smoke sweep (ctest -L fuzz-smoke). */
TEST(DiffOracle, SmokeSweep500Seeds)
{
    const OracleConfig cfg = smokeConfig();
    uint64_t frames = 0, stores = 0, round_tripped = 0;
    for (uint64_t seed = 0; seed < 500; ++seed) {
        const auto report = runOracle(ProgramSpec::random(seed), cfg);
        ASSERT_FALSE(report.diverged())
            << "seed " << seed << ": "
            << divergenceKindName(report.div.kind) << " "
            << report.div.detail;
        frames += report.framesCommitted;
        stores += report.storesCompared;
        round_tripped += report.uopsRoundTripped;
    }
    // The sweep is meaningless unless it actually fuzzes frame bodies
    // (and exercises the SoA<->AoS representation cross-check).
    EXPECT_GT(frames, 10000u);
    EXPECT_GT(stores, 10000u);
    EXPECT_GT(round_tripped, 10000u);
}

/**
 * Non-vacuity: sabotaging every optimized body leaving the optimizer
 * must surface as divergences.  If this fails, a clean sweep proves
 * nothing.
 */
TEST(DiffOracle, DetectsSabotagedOptimizedBodies)
{
    uint64_t diverging = 0;
    for (uint64_t seed = 0; seed < 10; ++seed) {
        fault::FaultConfig fault_cfg;
        fault_cfg.seed = seed + 1;
        fault_cfg.passSabotageRate = 1.0;
        fault::FaultInjector injector(fault_cfg);

        OracleConfig cfg = smokeConfig();
        cfg.injector = &injector;
        if (runOracle(ProgramSpec::random(seed), cfg).diverged())
            ++diverging;
    }
    EXPECT_GT(diverging, 5u);
}

// ---------------------------------------------------------------------
// Reducer
// ---------------------------------------------------------------------

namespace {

constexpr uint8_t CSE_BIT = 1u << opt::OptConfig::PASS_CSE;
constexpr uint8_t SF_BIT = 1u << opt::OptConfig::PASS_SF;

ProgramSpec
mixedSpec()
{
    ProgramSpec spec;
    spec.seed = 9;
    for (unsigned i = 0; i < 12; ++i) {
        Segment seg;
        seg.kind = (i % 3 == 0) ? SegKind::ALIAS : SegKind::ALU;
        seg.seed = i;
        spec.segments.push_back(seg);
    }
    return spec;
}

bool
hasAlias(const ProgramSpec &spec)
{
    for (const Segment &seg : spec.segments) {
        if (seg.kind == SegKind::ALIAS)
            return true;
    }
    return false;
}

Divergence
fakeDivergence()
{
    Divergence d;
    d.kind = Divergence::Kind::REG;
    d.detail = "synthetic";
    return d;
}

} // anonymous namespace

TEST(Reducer, MinimizesPassMaskToSingleCulprit)
{
    Reducer reducer([](const ProgramSpec &, uint8_t mask) {
        return (mask & CSE_BIT) ? fakeDivergence() : Divergence{};
    });
    const auto repro = reducer.reduce(mixedSpec(), 0x7f, 4000);
    ASSERT_TRUE(repro.has_value());
    EXPECT_EQ(repro->passMask, CSE_BIT);
    // The predicate ignores the program, so ddmin shrinks it to one
    // segment.
    EXPECT_EQ(repro->spec.segments.size(), 1u);
    EXPECT_EQ(repro->div.kind, Divergence::Kind::REG);
}

TEST(Reducer, ShrinksToTriggeringSegmentKind)
{
    Reducer reducer([](const ProgramSpec &spec, uint8_t mask) {
        return ((mask & SF_BIT) && hasAlias(spec)) ? fakeDivergence()
                                                   : Divergence{};
    });
    const auto repro = reducer.reduce(mixedSpec(), 0x7f, 4000);
    ASSERT_TRUE(repro.has_value());
    EXPECT_EQ(repro->passMask, SF_BIT);
    ASSERT_EQ(repro->spec.segments.size(), 1u);
    EXPECT_EQ(repro->spec.segments[0].kind, SegKind::ALIAS);
    EXPECT_LE(reducer.probes(), 400u);
}

TEST(Reducer, ReturnsNulloptWhenInputDoesNotDiverge)
{
    Reducer reducer(
        [](const ProgramSpec &, uint8_t) { return Divergence{}; });
    EXPECT_FALSE(reducer.reduce(mixedSpec(), 0x7f, 4000).has_value());
    EXPECT_EQ(reducer.probes(), 1u);
}

TEST(Reducer, RespectsProbeBudget)
{
    unsigned calls = 0;
    Reducer reducer(
        [&calls](const ProgramSpec &, uint8_t) {
            ++calls;
            return fakeDivergence();    // everything "diverges"
        },
        50);
    ProgramSpec spec = mixedSpec();
    // Blow the list up so an unbounded ddmin would need many probes.
    while (spec.segments.size() < 64)
        spec.segments.push_back(spec.segments.back());
    const auto repro = reducer.reduce(spec, 0x7f, 4000);
    ASSERT_TRUE(repro.has_value());
    EXPECT_LE(calls, 52u);     // budget + initial + final confirmation
}

// ---------------------------------------------------------------------
// Repro files and the regression corpus
// ---------------------------------------------------------------------

TEST(Repro, SerializeRoundTrips)
{
    Repro repro;
    repro.spec = ProgramSpec::random(77);
    repro.passMask = 0x15;
    repro.maxInsts = 2500;
    repro.div = fakeDivergence();
    repro.div.retired = 812;
    repro.div.framePc = 0x401234;

    const auto back = Repro::parse(repro.serialize());
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->spec, repro.spec);
    EXPECT_EQ(back->passMask, repro.passMask);
    EXPECT_EQ(back->maxInsts, repro.maxInsts);
}

TEST(Repro, ParseRejectsMalformedInput)
{
    EXPECT_FALSE(Repro::parse(""));
    EXPECT_FALSE(Repro::parse("maxinsts 100\npassmask 3\n"));
    EXPECT_FALSE(Repro::parse("spec progen-v1 1 ALU:2\nbogus line\n"));
    EXPECT_FALSE(Repro::parse("passmask 900\nspec progen-v1 1 ALU:2\n"));
}

TEST(Corpus, EveryCommittedReproReplaysClean)
{
    const std::filesystem::path dir = FUZZ_CORPUS_DIR;
    ASSERT_TRUE(std::filesystem::is_directory(dir));
    unsigned replayed = 0;
    for (const auto &entry : std::filesystem::directory_iterator(dir)) {
        if (entry.path().extension() != ".txt")
            continue;
        std::ifstream in(entry.path());
        std::stringstream buf;
        buf << in.rdbuf();
        const auto repro = Repro::parse(buf.str());
        ASSERT_TRUE(repro.has_value()) << entry.path();
        const auto report = runOracle(repro->spec,
                                      repro->oracleConfig());
        EXPECT_FALSE(report.diverged())
            << entry.path() << ": "
            << divergenceKindName(report.div.kind) << " "
            << report.div.detail;
        EXPECT_GT(report.framesCommitted, 0u) << entry.path();
        ++replayed;
    }
    EXPECT_GT(replayed, 0u);
}
