/**
 * @file
 * Unit tests for the x86 subset: instruction properties, assembler
 * layout, functional executor semantics, and memory model.
 */

#include <gtest/gtest.h>

#include "x86/asmbuilder.hh"
#include "x86/disasm.hh"
#include "x86/executor.hh"
#include "x86/inst.hh"

using namespace replay;
using namespace replay::x86;

namespace {

Executor
runProgram(AsmBuilder &b, uint64_t steps)
{
    static std::vector<Program> keep;   // keep programs alive
    keep.push_back(b.build());
    Executor exec(keep.back());
    exec.run(steps);
    return exec;
}

} // namespace

TEST(Flags, CondTakenMatrix)
{
    Flags f;
    f.zf = true;
    EXPECT_TRUE(condTaken(Cond::E, f));
    EXPECT_FALSE(condTaken(Cond::NE, f));
    EXPECT_TRUE(condTaken(Cond::BE, f));
    EXPECT_FALSE(condTaken(Cond::A, f));

    Flags g;
    g.sf = true;
    g.of = false;
    EXPECT_TRUE(condTaken(Cond::L, g));
    EXPECT_FALSE(condTaken(Cond::GE, g));
    EXPECT_TRUE(condTaken(Cond::LE, g));
    EXPECT_FALSE(condTaken(Cond::G, g));

    Flags h;
    h.cf = true;
    EXPECT_TRUE(condTaken(Cond::B, h));
    EXPECT_FALSE(condTaken(Cond::AE, h));
}

TEST(Flags, InvertPairsUp)
{
    for (unsigned i = 0; i < 16; ++i) {
        const Cond cc = static_cast<Cond>(i);
        EXPECT_EQ(invert(invert(cc)), cc);
        // An inverted condition is never taken together with the
        // original.
        for (unsigned raw = 0; raw < 32; ++raw) {
            const Flags f = Flags::unpack(uint8_t(raw));
            EXPECT_NE(condTaken(cc, f), condTaken(invert(cc), f));
        }
    }
}

TEST(Flags, PackUnpackRoundTrip)
{
    for (unsigned raw = 0; raw < 32; ++raw)
        EXPECT_EQ(Flags::unpack(uint8_t(raw)).pack(), raw);
}

TEST(SparseMemory, ZeroFillAndRoundTrip)
{
    SparseMemory mem;
    EXPECT_EQ(mem.read(0x1234, 4), 0u);
    mem.write(0x1234, 4, 0xdeadbeef);
    EXPECT_EQ(mem.read(0x1234, 4), 0xdeadbeefu);
    EXPECT_EQ(mem.read(0x1234, 1), 0xefu);
    EXPECT_EQ(mem.read(0x1236, 2), 0xdeadu);
}

TEST(SparseMemory, CrossPageAccess)
{
    SparseMemory mem;
    mem.write(0x1ffe, 4, 0x11223344);
    EXPECT_EQ(mem.read(0x1ffe, 4), 0x11223344u);
    EXPECT_EQ(mem.read(0x2000, 2), 0x1122u);
    EXPECT_EQ(mem.pageCount(), 2u);
}

TEST(Inst, ModeledLengthsAreRealistic)
{
    Inst push;
    push.mnem = Mnem::PUSH;
    push.form = Form::R;
    push.reg2 = Reg::EBP;
    EXPECT_EQ(push.modeledLength(), 1u);

    Inst movri;
    movri.mnem = Mnem::MOV;
    movri.form = Form::RI;
    movri.reg1 = Reg::EAX;
    movri.imm = 0x12345678;
    EXPECT_EQ(movri.modeledLength(), 5u);

    Inst jcc;
    jcc.mnem = Mnem::JCC;
    jcc.form = Form::REL;
    EXPECT_EQ(jcc.modeledLength(), 6u);
}

TEST(Inst, LoadStoreClassification)
{
    Inst pop;
    pop.mnem = Mnem::POP;
    pop.form = Form::R;
    EXPECT_TRUE(pop.isLoad());
    EXPECT_FALSE(pop.isStore());

    Inst push;
    push.mnem = Mnem::PUSH;
    push.form = Form::R;
    EXPECT_TRUE(push.isStore());
    EXPECT_FALSE(push.isLoad());

    Inst call;
    call.mnem = Mnem::CALL;
    call.form = Form::REL;
    EXPECT_TRUE(call.isStore());
    EXPECT_TRUE(call.isControl());

    Inst alu_rm;
    alu_rm.mnem = Mnem::ADD;
    alu_rm.form = Form::RM;
    EXPECT_TRUE(alu_rm.isLoad());
}

TEST(AsmBuilder, SequentialLayoutAndLabels)
{
    AsmBuilder b(0x1000);
    b.nop();                        // 1 byte
    b.label("target");
    b.movRI(Reg::EAX, 42);          // 5 bytes
    b.jmp("target");
    Program prog = b.build();
    EXPECT_EQ(prog.code().size(), 3u);
    EXPECT_EQ(prog.code()[0].addr, 0x1000u);
    EXPECT_EQ(prog.code()[1].addr, 0x1001u);
    EXPECT_EQ(b.addrOf("target"), 0x1001u);
    EXPECT_EQ(prog.code()[2].inst.target, 0x1001u);
}

TEST(Executor, AluAndFlags)
{
    AsmBuilder b;
    b.movRI(Reg::EAX, 5);
    b.movRI(Reg::EBX, 5);
    b.subRR(Reg::EAX, Reg::EBX);    // 0 -> ZF
    b.jmp("self");
    b.label("self");

    Executor exec = runProgram(b, 3);
    EXPECT_EQ(exec.reg(Reg::EAX), 0u);
    EXPECT_TRUE(exec.flags().zf);
    EXPECT_FALSE(exec.flags().cf);
}

TEST(Executor, SubSetsCarryOnBorrow)
{
    AsmBuilder b;
    b.movRI(Reg::EAX, 3);
    b.subRI(Reg::EAX, 5);
    b.jmp("x");
    b.label("x");
    Executor exec = runProgram(b, 2);
    EXPECT_EQ(exec.reg(Reg::EAX), 0xfffffffeu);
    EXPECT_TRUE(exec.flags().cf);
    EXPECT_TRUE(exec.flags().sf);
}

TEST(Executor, IncPreservesCarry)
{
    AsmBuilder b;
    b.movRI(Reg::EAX, 3);
    b.subRI(Reg::EAX, 5);           // sets CF
    b.incR(Reg::EAX);               // must preserve CF
    b.jmp("x");
    b.label("x");
    Executor exec = runProgram(b, 3);
    EXPECT_TRUE(exec.flags().cf);
}

TEST(Executor, PushPopRoundTrip)
{
    AsmBuilder b;
    b.movRI(Reg::EAX, 0x1111);
    b.movRI(Reg::EBX, 0x2222);
    b.pushR(Reg::EAX);
    b.pushR(Reg::EBX);
    b.popR(Reg::ECX);
    b.popR(Reg::EDX);
    b.jmp("x");
    b.label("x");
    Executor exec = runProgram(b, 6);
    EXPECT_EQ(exec.reg(Reg::ECX), 0x2222u);
    EXPECT_EQ(exec.reg(Reg::EDX), 0x1111u);
    // Stack pointer balanced back to the initial stack top.
    EXPECT_EQ(exec.reg(Reg::ESP), 0x7ffff000u);
}

TEST(Executor, CallRetLinkage)
{
    AsmBuilder b;
    b.call("callee");
    b.label("after");
    b.movRI(Reg::EBX, 7);
    b.jmp("after");
    b.label("callee");
    b.movRI(Reg::EAX, 9);
    b.ret();

    Executor exec = runProgram(b, 4);
    EXPECT_EQ(exec.reg(Reg::EAX), 9u);
    EXPECT_EQ(exec.reg(Reg::EBX), 7u);
}

TEST(Executor, DivFixedRegisters)
{
    AsmBuilder b;
    b.movRI(Reg::EAX, 100);
    b.movRI(Reg::EDX, 0);
    b.movRI(Reg::EBX, 7);
    b.divR(Reg::EBX);
    b.jmp("x");
    b.label("x");
    Executor exec = runProgram(b, 4);
    EXPECT_EQ(exec.reg(Reg::EAX), 14u);     // quotient
    EXPECT_EQ(exec.reg(Reg::EDX), 2u);      // remainder
}

TEST(Executor, MemoryOperandsAndScaledIndex)
{
    AsmBuilder b;
    const uint32_t tab = b.dataRegion("tab", 64);
    b.dataWords("tab", {10, 20, 30, 40});
    b.movRI(Reg::EBX, int32_t(tab));
    b.movRI(Reg::ECX, 2);
    b.movRM(Reg::EAX, memAt(Reg::EBX, Reg::ECX, 4, 0));
    b.addRM(Reg::EAX, memAt(Reg::EBX, 4));
    b.movMR(memAt(Reg::EBX, Reg::ECX, 4, 4), Reg::EAX);
    b.jmp("x");
    b.label("x");
    Executor exec = runProgram(b, 5);
    EXPECT_EQ(exec.reg(Reg::EAX), 50u);     // 30 + 20
    EXPECT_EQ(exec.memory().read(tab + 12, 4), 50u);
}

TEST(Executor, MovzxMovsx)
{
    AsmBuilder b;
    const uint32_t d = b.dataRegion("d", 16);
    b.dataWords("d", {0x000000f0});
    b.movRI(Reg::EBX, int32_t(d));
    b.movzxRM(Reg::EAX, memAt(Reg::EBX, 0), 1);
    b.movsxRM(Reg::ECX, memAt(Reg::EBX, 0), 1);
    b.jmp("x");
    b.label("x");
    Executor exec = runProgram(b, 4);
    EXPECT_EQ(exec.reg(Reg::EAX), 0xf0u);
    EXPECT_EQ(exec.reg(Reg::ECX), 0xfffffff0u);
}

TEST(Executor, SetccWritesLowByteOnly)
{
    AsmBuilder b;
    b.movRI(Reg::EAX, 0x12345678);
    b.cmpRI(Reg::EAX, 0x12345678);
    b.setcc(Cond::E, Reg::EAX);
    b.jmp("x");
    b.label("x");
    Executor exec = runProgram(b, 3);
    EXPECT_EQ(exec.reg(Reg::EAX), 0x12345601u);
}

TEST(Executor, JccTakenAndNotTaken)
{
    AsmBuilder b;
    b.movRI(Reg::EAX, 1);
    b.testRR(Reg::EAX, Reg::EAX);
    b.jcc(Cond::E, "never");        // not taken
    b.movRI(Reg::EBX, 5);
    b.jmp("x");
    b.label("never");
    b.movRI(Reg::EBX, 9);
    b.label("x");
    b.jmp("x");

    Executor exec = runProgram(b, 5);
    EXPECT_EQ(exec.reg(Reg::EBX), 5u);
}

TEST(Executor, StepInfoReportsSideEffects)
{
    AsmBuilder b;
    b.pushI(0x77);
    Program prog = b.build();
    Executor exec(prog);
    const StepInfo info = exec.step();
    ASSERT_EQ(info.memOps.size(), 1u);
    EXPECT_TRUE(info.memOps[0].isStore);
    EXPECT_EQ(info.memOps[0].data, 0x77u);
    ASSERT_EQ(info.regWrites.size(), 1u);
    EXPECT_EQ(info.regWrites[0].reg, Reg::ESP);
}

TEST(Executor, FloatingPointKernel)
{
    AsmBuilder b;
    const uint32_t d = b.dataRegion("f", 32);
    const float two = 2.0f, three = 3.0f;
    uint32_t tw, th;
    memcpy(&tw, &two, 4);
    memcpy(&th, &three, 4);
    b.dataWords("f", {tw, th});
    b.fld(FReg::F0, memAbs(int32_t(d)));
    b.fld(FReg::F1, memAbs(int32_t(d + 4)));
    b.fopFRR(Mnem::FMUL, FReg::F0, FReg::F1);
    b.fst(memAbs(int32_t(d + 8)), FReg::F0);
    b.jmp("x");
    b.label("x");
    Executor exec = runProgram(b, 5);
    const uint32_t raw = exec.memory().read(d + 8, 4);
    float result;
    memcpy(&result, &raw, 4);
    EXPECT_FLOAT_EQ(result, 6.0f);
}

TEST(Disasm, RendersKeyForms)
{
    Inst mov;
    mov.mnem = Mnem::MOV;
    mov.form = Form::RM;
    mov.reg1 = Reg::ECX;
    mov.mem = memAt(Reg::ESP, 0x0c);
    EXPECT_EQ(disassemble(mov), "MOV ECX, [ESP+0x0c]");

    Inst jcc;
    jcc.mnem = Mnem::JCC;
    jcc.form = Form::REL;
    jcc.cc = Cond::NE;
    jcc.target = 0x401234;
    EXPECT_EQ(disassemble(jcc), "JNE 0x00401234");
}

TEST(Program, FatalOnUnplacedAddress)
{
    AsmBuilder b;
    b.nop();
    Program prog = b.build();
    EXPECT_TRUE(prog.contains(prog.entry()));
    EXPECT_FALSE(prog.contains(prog.entry() + 1));
}

// ---------------------------------------------------------------------
// Additional edge cases
// ---------------------------------------------------------------------

TEST(Executor, ImulOverflowSetsCarryAndOverflow)
{
    AsmBuilder b;
    b.movRI(Reg::EAX, 0x40000000);
    b.imulRRI(Reg::EBX, Reg::EAX, 4);       // overflows 32 bits
    b.jmp("x");
    b.label("x");
    Executor exec = runProgram(b, 2);
    EXPECT_TRUE(exec.flags().cf);
    EXPECT_TRUE(exec.flags().of);
}

TEST(Executor, CdqSignFillsEdx)
{
    AsmBuilder b;
    b.movRI(Reg::EAX, -5);
    b.cdq();
    b.movRI(Reg::ECX, 5);
    b.movRR(Reg::EAX, Reg::ECX);
    b.cdq();
    b.jmp("x");
    b.label("x");
    {
        Executor exec = runProgram(b, 2);
        EXPECT_EQ(exec.reg(Reg::EDX), 0xffffffffu);
    }
    {
        AsmBuilder b2;
        b2.movRI(Reg::EAX, 5);
        b2.cdq();
        b2.jmp("x");
        b2.label("x");
        Executor exec = runProgram(b2, 2);
        EXPECT_EQ(exec.reg(Reg::EDX), 0u);
    }
}

TEST(Executor, NegZeroClearsCarry)
{
    AsmBuilder b;
    b.movRI(Reg::EAX, 0);
    b.negR(Reg::EAX);
    b.jmp("x");
    b.label("x");
    Executor exec = runProgram(b, 2);
    EXPECT_FALSE(exec.flags().cf);
    EXPECT_TRUE(exec.flags().zf);
}

TEST(Executor, ShiftFlagSemantics)
{
    AsmBuilder b;
    b.movRI(Reg::EAX, 0x80000000);
    b.shlRI(Reg::EAX, 1);           // shifts the sign bit out -> CF
    b.jmp("x");
    b.label("x");
    {
        Executor exec = runProgram(b, 2);
        EXPECT_TRUE(exec.flags().cf);
        EXPECT_EQ(exec.reg(Reg::EAX), 0u);
    }
    {
        AsmBuilder b2;
        b2.movRI(Reg::EAX, 3);
        b2.sarRI(Reg::EAX, 1);      // CF = last bit shifted out
        b2.jmp("x");
        b2.label("x");
        Executor exec = runProgram(b2, 2);
        EXPECT_TRUE(exec.flags().cf);
        EXPECT_EQ(exec.reg(Reg::EAX), 1u);
    }
}

TEST(Executor, IndirectJumpThroughRegisterAndTable)
{
    AsmBuilder b;
    b.dataRegion("tab", 16);
    b.dataWordLabel("tab", 0, "t0");
    b.dataWordLabel("tab", 1, "t1");
    b.movRI(Reg::ECX, 1);
    b.movRM(Reg::EAX,
            memAt(Reg::NONE, Reg::ECX, 4, int32_t(b.dataAddr("tab"))));
    b.jmpR(Reg::EAX);
    b.label("t0");
    b.movRI(Reg::EBX, 100);
    b.jmp("x");
    b.label("t1");
    b.movRI(Reg::EBX, 200);
    b.label("x");
    b.jmp("x");
    Executor exec = runProgram(b, 4);
    EXPECT_EQ(exec.reg(Reg::EBX), 200u);
}

TEST(Executor, LongflowIsArchitecturalNop)
{
    AsmBuilder b;
    b.movRI(Reg::EAX, 7);
    b.longflow();
    b.jmp("x");
    b.label("x");
    Executor exec = runProgram(b, 2);
    EXPECT_EQ(exec.reg(Reg::EAX), 7u);
}

TEST(Disasm, MemOperandVariants)
{
    Inst lea;
    lea.mnem = Mnem::LEA;
    lea.form = Form::RM;
    lea.reg1 = Reg::EBX;
    lea.mem = memAt(Reg::ESI, Reg::EAX, 4, -8);
    EXPECT_EQ(disassemble(lea), "LEA EBX, [ESI+EAX*4-0x08]");

    Inst movabs;
    movabs.mnem = Mnem::MOV;
    movabs.form = Form::RM;
    movabs.reg1 = Reg::EAX;
    movabs.mem = memAbs(0x1234);
    EXPECT_EQ(disassemble(movabs), "MOV EAX, [0x00001234]");
}
