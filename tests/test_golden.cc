/**
 * @file
 * Golden end-to-end snapshot tests.
 *
 * Pins the full simulation pipeline — trace synthesis, decode, frame
 * construction, optimization, timing, stat merging — to checked-in
 * RunStats fingerprints for every standard workload under RP and RPO
 * at a fixed 50k-instruction budget.  Any change that perturbs
 * simulated behaviour (instead of just making the simulator faster)
 * shows up here as a fingerprint mismatch.
 *
 * The values were captured with:
 *
 *   REPLAY_SIM_INSTS=50000 ./build/tools/replaybench --json --jobs 1 \
 *       table3
 *
 * and must only ever be refreshed for an *intentional* behavioural
 * change, with the replaybench digests called out in the commit.
 * Performance work — allocator changes, index rewrites, batching —
 * must keep them bit-identical; that is the contract the tier-1
 * perf-smoke gate (tools/perfgate) builds on.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "sim/runner.hh"
#include "sim/sweep.hh"
#include "trace/chunk.hh"
#include "trace/corpus.hh"
#include "trace/tracer.hh"
#include "trace/tracev3.hh"
#include "trace/workload.hh"

using namespace replay;

namespace {

constexpr uint64_t GOLDEN_BUDGET = 50000;

struct GoldenCell
{
    const char *workload;
    sim::Machine machine;
    const char *fingerprint;    ///< RunStats::fingerprint(), hex
    uint64_t x86Retired;        ///< budget x numTraces
};

/** One row per (workload, machine): the frozen behaviour snapshot. */
constexpr GoldenCell kGolden[] = {
    {"bzip2", sim::Machine::RP, "5d118401fc09b809", 50000},
    {"bzip2", sim::Machine::RPO, "c27fcc4bfb59e86a", 50000},
    {"crafty", sim::Machine::RP, "5b608b8700fbf4e2", 50000},
    {"crafty", sim::Machine::RPO, "f851882959c6a63c", 50000},
    {"eon", sim::Machine::RP, "7fb3f0e2d360ee21", 50000},
    {"eon", sim::Machine::RPO, "0de3879c3fe20ad9", 50000},
    {"gzip", sim::Machine::RP, "89ac0092a4d21833", 50000},
    {"gzip", sim::Machine::RPO, "aa96aafbb71b852c", 50000},
    {"parser", sim::Machine::RP, "391ab3ff2763efda", 50000},
    {"parser", sim::Machine::RPO, "919f37629891c73d", 50000},
    {"twolf", sim::Machine::RP, "59bd8bc943dd74f8", 50000},
    {"twolf", sim::Machine::RPO, "f6cd11affaa196a6", 50000},
    {"vortex", sim::Machine::RP, "81343e756eccfa69", 50000},
    {"vortex", sim::Machine::RPO, "01779bfe5966c9f7", 50000},
    {"access", sim::Machine::RP, "93e93e5cb3be3859", 100000},
    {"access", sim::Machine::RPO, "0813dbac94a047ff", 100000},
    {"dream", sim::Machine::RP, "c0bf56502b09f897", 100000},
    {"dream", sim::Machine::RPO, "0d44a5641cff6fc5", 100000},
    {"excel", sim::Machine::RP, "b52f14ce2d74aab1", 150000},
    {"excel", sim::Machine::RPO, "ff2e808b9519ad3f", 150000},
    {"lotus", sim::Machine::RP, "e5c5c4baec2e1cd9", 100000},
    {"lotus", sim::Machine::RPO, "d3bb869f61460bce", 100000},
    {"photo", sim::Machine::RP, "5edb839440f73a12", 100000},
    {"photo", sim::Machine::RPO, "a06b0f545dfd0c08", 100000},
    {"power", sim::Machine::RP, "408a7847d57f0ed3", 150000},
    {"power", sim::Machine::RPO, "6671fb720daa05cb", 150000},
    {"sound", sim::Machine::RP, "cddc2871424af778", 150000},
    {"sound", sim::Machine::RPO, "4c24b2e25c763ed8", 150000},
};

/** The whole-grid digest of the same 28 cells (replaybench table3). */
constexpr const char *GOLDEN_GRID_DIGEST = "1eb94e7a31a2de33";

std::string
hex64(uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx", (unsigned long long)v);
    return buf;
}

class Golden : public ::testing::TestWithParam<GoldenCell>
{
};

} // namespace

TEST_P(Golden, FingerprintIsBitIdentical)
{
    const GoldenCell &cell = GetParam();
    const auto &workload = trace::findWorkload(cell.workload);
    const sim::RunStats stats = sim::runWorkload(
        workload, sim::SimConfig::make(cell.machine), GOLDEN_BUDGET);

    EXPECT_EQ(stats.x86Retired, cell.x86Retired);
    EXPECT_EQ(hex64(stats.fingerprint()), cell.fingerprint)
        << cell.workload << "/" << sim::machineName(cell.machine)
        << " diverged from the golden snapshot: either an unintended "
           "behaviour change, or refresh tests/test_golden.cc for an "
           "intentional one";
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, Golden, ::testing::ValuesIn(kGolden),
    [](const ::testing::TestParamInfo<GoldenCell> &cell) {
        return std::string(cell.param.workload) + "_" +
               sim::machineName(cell.param.machine);
    });

/**
 * The parallel sweep driver folds the same 28 cells to the same
 * digest — golden values stay comparable with replaybench output and
 * the perfgate determinism check, for any worker count.
 */
TEST(GoldenSweep, GridDigestMatchesReplaybench)
{
    const std::vector<std::pair<std::string, sim::SimConfig>> cols = {
        {"RP", sim::SimConfig::make(sim::Machine::RP)},
        {"RPO", sim::SimConfig::make(sim::Machine::RPO)},
    };
    sim::SweepOptions opts;
    opts.jobs = 2;
    opts.instsPerTrace = GOLDEN_BUDGET;
    opts.warmup = false;        // determinism, not timing, is at stake
    const auto result =
        sim::runSweep(sim::gridCells(sim::standardWorkloadRows(), cols),
                      opts);
    EXPECT_EQ(hex64(result.digest()), GOLDEN_GRID_DIGEST);
    ASSERT_EQ(result.cells.size(), std::size(kGolden));
    for (size_t i = 0; i < result.cells.size(); ++i) {
        EXPECT_EQ(hex64(result.cells[i].fingerprint()),
                  kGolden[i].fingerprint)
            << "sweep cell " << i << " (" << result.cells[i].workload
            << "/" << result.cells[i].config << ")";
    }
}

/**
 * Sweeping over *recorded v3 trace containers* (via a corpus manifest)
 * must be bit-identical to live synthesis: same grid digest, same
 * per-cell fingerprints as kGolden.  Corpus replay adds no sentinel to
 * the fingerprint — identical input records are the whole guarantee —
 * so the frozen goldens stay frozen.
 */
TEST(GoldenSweep, V3CorpusReplayIsBitIdenticalToTheGoldens)
{
    // Record every (workload, hot spot) at the golden budget and pin
    // each stream with the synthesizer's authoritative digest.
    const std::string dir = ::testing::TempDir();
    const std::string manifest = dir + "golden_corpus.json";
    std::vector<trace::CorpusEntry> entries;
    for (const trace::Workload &w : trace::standardWorkloads()) {
        for (unsigned t = 0; t < w.numTraces; ++t) {
            const x86::Program prog = w.buildProgram(t);
            trace::CorpusEntry e;
            e.id = std::string(w.name) + "." + std::to_string(t);
            e.workload = w.name;
            e.traceIdx = t;
            e.records = GOLDEN_BUDGET;
            e.file = "golden_corpus." + e.id + ".rpl3";
            trace::TraceV3Writer::dumpProgram(prog, GOLDEN_BUDGET,
                                              dir + e.file);
            trace::ExecutorTraceSource live(prog, GOLDEN_BUDGET);
            e.digest = trace::wire::streamDigest(live);
            entries.push_back(e);
        }
    }
    ASSERT_TRUE(trace::writeCorpusManifest(manifest, entries).ok());

    trace::clearTraceQuarantine();
    const trace::TraceCorpus corpus = trace::TraceCorpus::load(manifest);
    ASSERT_TRUE(corpus.ok()) << corpus.error().describe();

    const std::vector<std::pair<std::string, sim::SimConfig>> cols = {
        {"RP", sim::SimConfig::make(sim::Machine::RP)},
        {"RPO", sim::SimConfig::make(sim::Machine::RPO)},
    };
    sim::SweepOptions opts;
    opts.jobs = 2;
    opts.instsPerTrace = GOLDEN_BUDGET;
    opts.warmup = false;
    opts.corpus = &corpus;
    const auto result =
        sim::runSweep(sim::gridCells(sim::standardWorkloadRows(), cols),
                      opts);

    EXPECT_EQ(hex64(result.digest()), GOLDEN_GRID_DIGEST);
    ASSERT_EQ(result.cells.size(), std::size(kGolden));
    for (size_t i = 0; i < result.cells.size(); ++i) {
        EXPECT_EQ(hex64(result.cells[i].fingerprint()),
                  kGolden[i].fingerprint)
            << "corpus sweep cell " << i << " ("
            << result.cells[i].workload << "/" << result.cells[i].config
            << ") diverged from the golden snapshot";
    }

    // Every cell must have replayed a recording; none fell back.
    unsigned traces = 0;
    for (const trace::Workload &w : trace::standardWorkloads())
        traces += w.numTraces;
    EXPECT_EQ(result.corpusHits, 2 * traces);
    EXPECT_EQ(result.corpusMisses, 0u);
}

// ---------------------------------------------------------------------
// Tiered re-optimization goldens.  tierBudget = 0 must be bit-identical
// to the table above (tiering off is the seed behaviour, enforced per
// cell); the deterministic single-worker tier mode gets its own frozen
// per-workload fingerprints.
// ---------------------------------------------------------------------

namespace {

/** Frozen RPO fingerprints with one deterministic tier worker. */
struct TierGoldenCell
{
    const char *workload;
    const char *fingerprint;
    uint64_t x86Retired;
};

/**
 * Captured with:
 *
 *   REPLAY_SIM_INSTS=50000 ./build/tools/replaybench --json --jobs 1 \
 *       --tier 1 --tier-det table3
 *
 * (RPO column; the digest of that run was 146b89c79510a9b9.)  Same
 * refresh contract as kGolden: only for intentional behaviour changes.
 */
constexpr TierGoldenCell kTierGolden[] = {
    {"bzip2", "700a370a71687c6a", 50000},
    {"crafty", "a12c092ae5df2934", 50000},
    {"eon", "266eb6542d0e08e4", 50000},
    {"gzip", "02c3c53c98b9ca07", 50000},
    {"parser", "79f5dae154de8380", 50000},
    {"twolf", "148943f1d85e555a", 50000},
    {"vortex", "dbcd68b73adeed50", 50000},
    {"access", "176d826495057a2c", 100000},
    {"dream", "22da7b13a41714a8", 100000},
    {"excel", "04e982d2b2d7297a", 150000},
    {"lotus", "8eeb66554bba2bd2", 100000},
    {"photo", "fb05db4cf1a83300", 100000},
    {"power", "a511322d24364547", 150000},
    {"sound", "785dc2d84f633098", 150000},
};

const GoldenCell &
goldenCellFor(const char *workload, sim::Machine machine)
{
    for (const GoldenCell &cell : kGolden)
        if (std::string(cell.workload) == workload &&
            cell.machine == machine)
            return cell;
    ADD_FAILURE() << "no golden cell for " << workload;
    return kGolden[0];
}

} // namespace

TEST(GoldenTier, ZeroTierBudgetIsBitIdenticalToTheGoldens)
{
    // An *explicit* tier.workers = 0 must take the identical code path
    // as the seed configs above — same fingerprints, bit for bit.
    for (const char *app : {"bzip2", "gzip", "crafty", "excel"}) {
        for (const sim::Machine machine :
             {sim::Machine::RP, sim::Machine::RPO}) {
            sim::SimConfig cfg = sim::SimConfig::make(machine);
            cfg.engine.tier.workers = 0;
            cfg.engine.tier.deterministic = true;   // moot at 0 workers
            const sim::RunStats stats = sim::runWorkload(
                trace::findWorkload(app), cfg, GOLDEN_BUDGET);
            const GoldenCell &golden = goldenCellFor(app, machine);
            EXPECT_EQ(hex64(stats.fingerprint()), golden.fingerprint)
                << app << "/" << sim::machineName(machine)
                << ": tierBudget=0 diverged from the untiered golden";
            EXPECT_EQ(stats.tierEnqueues, 0u);
        }
    }
}

class GoldenTierDet : public ::testing::TestWithParam<TierGoldenCell>
{
};

TEST_P(GoldenTierDet, DeterministicSingleWorkerFingerprint)
{
    const TierGoldenCell &cell = GetParam();
    sim::SimConfig cfg = sim::SimConfig::make(sim::Machine::RPO);
    cfg.engine.tier.workers = 1;
    cfg.engine.tier.deterministic = true;
    const sim::RunStats stats = sim::runWorkload(
        trace::findWorkload(cell.workload), cfg, GOLDEN_BUDGET);

    EXPECT_EQ(stats.x86Retired, cell.x86Retired);
    EXPECT_GT(stats.tierPublishes, 0u) << cell.workload;
    EXPECT_EQ(hex64(stats.fingerprint()), cell.fingerprint)
        << cell.workload
        << " diverged from the deterministic-tier golden snapshot";
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, GoldenTierDet, ::testing::ValuesIn(kTierGolden),
    [](const ::testing::TestParamInfo<TierGoldenCell> &cell) {
        return std::string(cell.param.workload);
    });
