/**
 * @file
 * Golden end-to-end snapshot tests.
 *
 * Pins the full simulation pipeline — trace synthesis, decode, frame
 * construction, optimization, timing, stat merging — to checked-in
 * RunStats fingerprints for every standard workload under RP and RPO
 * at a fixed 50k-instruction budget.  Any change that perturbs
 * simulated behaviour (instead of just making the simulator faster)
 * shows up here as a fingerprint mismatch.
 *
 * The values were captured with:
 *
 *   REPLAY_SIM_INSTS=50000 ./build/tools/replaybench --json --jobs 1 \
 *       table3
 *
 * and must only ever be refreshed for an *intentional* behavioural
 * change, with the replaybench digests called out in the commit.
 * Performance work — allocator changes, index rewrites, batching —
 * must keep them bit-identical; that is the contract the tier-1
 * perf-smoke gate (tools/perfgate) builds on.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "sim/runner.hh"
#include "sim/sweep.hh"
#include "trace/workload.hh"

using namespace replay;

namespace {

constexpr uint64_t GOLDEN_BUDGET = 50000;

struct GoldenCell
{
    const char *workload;
    sim::Machine machine;
    const char *fingerprint;    ///< RunStats::fingerprint(), hex
    uint64_t x86Retired;        ///< budget x numTraces
};

/** One row per (workload, machine): the frozen behaviour snapshot. */
constexpr GoldenCell kGolden[] = {
    {"bzip2", sim::Machine::RP, "5d118401fc09b809", 50000},
    {"bzip2", sim::Machine::RPO, "c27fcc4bfb59e86a", 50000},
    {"crafty", sim::Machine::RP, "5b608b8700fbf4e2", 50000},
    {"crafty", sim::Machine::RPO, "f851882959c6a63c", 50000},
    {"eon", sim::Machine::RP, "7fb3f0e2d360ee21", 50000},
    {"eon", sim::Machine::RPO, "0de3879c3fe20ad9", 50000},
    {"gzip", sim::Machine::RP, "89ac0092a4d21833", 50000},
    {"gzip", sim::Machine::RPO, "aa96aafbb71b852c", 50000},
    {"parser", sim::Machine::RP, "391ab3ff2763efda", 50000},
    {"parser", sim::Machine::RPO, "919f37629891c73d", 50000},
    {"twolf", sim::Machine::RP, "59bd8bc943dd74f8", 50000},
    {"twolf", sim::Machine::RPO, "f6cd11affaa196a6", 50000},
    {"vortex", sim::Machine::RP, "81343e756eccfa69", 50000},
    {"vortex", sim::Machine::RPO, "01779bfe5966c9f7", 50000},
    {"access", sim::Machine::RP, "93e93e5cb3be3859", 100000},
    {"access", sim::Machine::RPO, "0813dbac94a047ff", 100000},
    {"dream", sim::Machine::RP, "c0bf56502b09f897", 100000},
    {"dream", sim::Machine::RPO, "0d44a5641cff6fc5", 100000},
    {"excel", sim::Machine::RP, "b52f14ce2d74aab1", 150000},
    {"excel", sim::Machine::RPO, "ff2e808b9519ad3f", 150000},
    {"lotus", sim::Machine::RP, "e5c5c4baec2e1cd9", 100000},
    {"lotus", sim::Machine::RPO, "d3bb869f61460bce", 100000},
    {"photo", sim::Machine::RP, "5edb839440f73a12", 100000},
    {"photo", sim::Machine::RPO, "a06b0f545dfd0c08", 100000},
    {"power", sim::Machine::RP, "408a7847d57f0ed3", 150000},
    {"power", sim::Machine::RPO, "6671fb720daa05cb", 150000},
    {"sound", sim::Machine::RP, "cddc2871424af778", 150000},
    {"sound", sim::Machine::RPO, "4c24b2e25c763ed8", 150000},
};

/** The whole-grid digest of the same 28 cells (replaybench table3). */
constexpr const char *GOLDEN_GRID_DIGEST = "1eb94e7a31a2de33";

std::string
hex64(uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx", (unsigned long long)v);
    return buf;
}

class Golden : public ::testing::TestWithParam<GoldenCell>
{
};

} // namespace

TEST_P(Golden, FingerprintIsBitIdentical)
{
    const GoldenCell &cell = GetParam();
    const auto &workload = trace::findWorkload(cell.workload);
    const sim::RunStats stats = sim::runWorkload(
        workload, sim::SimConfig::make(cell.machine), GOLDEN_BUDGET);

    EXPECT_EQ(stats.x86Retired, cell.x86Retired);
    EXPECT_EQ(hex64(stats.fingerprint()), cell.fingerprint)
        << cell.workload << "/" << sim::machineName(cell.machine)
        << " diverged from the golden snapshot: either an unintended "
           "behaviour change, or refresh tests/test_golden.cc for an "
           "intentional one";
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, Golden, ::testing::ValuesIn(kGolden),
    [](const ::testing::TestParamInfo<GoldenCell> &cell) {
        return std::string(cell.param.workload) + "_" +
               sim::machineName(cell.param.machine);
    });

/**
 * The parallel sweep driver folds the same 28 cells to the same
 * digest — golden values stay comparable with replaybench output and
 * the perfgate determinism check, for any worker count.
 */
TEST(GoldenSweep, GridDigestMatchesReplaybench)
{
    const std::vector<std::pair<std::string, sim::SimConfig>> cols = {
        {"RP", sim::SimConfig::make(sim::Machine::RP)},
        {"RPO", sim::SimConfig::make(sim::Machine::RPO)},
    };
    sim::SweepOptions opts;
    opts.jobs = 2;
    opts.instsPerTrace = GOLDEN_BUDGET;
    opts.warmup = false;        // determinism, not timing, is at stake
    const auto result =
        sim::runSweep(sim::gridCells(sim::standardWorkloadRows(), cols),
                      opts);
    EXPECT_EQ(hex64(result.digest()), GOLDEN_GRID_DIGEST);
    ASSERT_EQ(result.cells.size(), std::size(kGolden));
    for (size_t i = 0; i < result.cells.size(); ++i) {
        EXPECT_EQ(hex64(result.cells[i].fingerprint()),
                  kGolden[i].fingerprint)
            << "sweep cell " << i << " (" << result.cells[i].workload
            << "/" << result.cells[i].config << ")";
    }
}
