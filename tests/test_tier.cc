/**
 * @file
 * Tier-stress battery for the background re-optimization engine:
 * BackgroundQueue scheduling/cancellation semantics (including a
 * multi-worker hammer meant to run under TSan), the frame cache's
 * versioned-slot publish protocol, and end-to-end engine runs proving
 * that asynchronous re-optimization converges to the same
 * architectural digest as synchronous full optimization.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <vector>

#include "core/framecache.hh"
#include "core/sequencer.hh"
#include "sim/simulator.hh"
#include "sim/sweep.hh"
#include "trace/workload.hh"
#include "util/bgqueue.hh"
#include "util/cancellation.hh"
#include "util/rng.hh"

using namespace replay;
using core::Frame;
using core::FrameCache;
using core::FramePtr;
using sim::Machine;
using sim::SimConfig;

// ---------------------------------------------------------------------
// BackgroundQueue unit tests
// ---------------------------------------------------------------------

namespace {

struct TestJob
{
    int id = 0;
    size_t memoryBytes() const { return sizeof(*this); }
};

struct TestResult
{
    int id = 0;
    size_t memoryBytes() const { return sizeof(*this); }
};

using TestQueue = BackgroundQueue<TestJob, TestResult>;

/**
 * Two-phase latch: the gate job signals it has been popped by a
 * worker (so the test knows later submissions stay *pending*), then
 * blocks until the test releases it.
 */
struct Gate
{
    std::mutex m;
    std::condition_variable cv;
    bool entered = false;
    bool released = false;

    void
    enter()
    {
        {
            std::lock_guard<std::mutex> lock(m);
            entered = true;
        }
        cv.notify_all();
        std::unique_lock<std::mutex> lock(m);
        cv.wait(lock, [&] { return released; });
    }

    void
    waitEntered()
    {
        std::unique_lock<std::mutex> lock(m);
        cv.wait(lock, [&] { return entered; });
    }

    void
    release()
    {
        {
            std::lock_guard<std::mutex> lock(m);
            released = true;
        }
        cv.notify_all();
    }
};

} // namespace

TEST(BackgroundQueue, InlineModeRunsOnSubmit)
{
    std::vector<int> ran;
    TestQueue queue(0, [&](TestJob &job) {
        ran.push_back(job.id);
        return TestResult{job.id};
    });
    EXPECT_EQ(queue.numWorkers(), 0u);

    queue.submit(0x1000, 5, TestJob{1});
    queue.submit(0x2000, 9, TestJob{2});
    // Inline mode: each job ran before submit() returned, in
    // submission order (priority only reorders *pending* work).
    EXPECT_EQ(ran, (std::vector<int>{1, 2}));
    EXPECT_EQ(queue.pendingCount(), 0u);
    EXPECT_EQ(queue.executedCount(), 2u);

    ASSERT_TRUE(queue.hasCompleted());
    std::vector<TestResult> results;
    queue.takeCompleted(results);
    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0].id, 1);
    EXPECT_EQ(results[1].id, 2);
    EXPECT_FALSE(queue.hasCompleted());
}

TEST(BackgroundQueue, WorkersPopHighestPriorityFirst)
{
    Gate gate;
    std::mutex order_mutex;
    std::vector<int> order;
    TestQueue queue(1, [&](TestJob &job) {
        if (job.id == 0)
            gate.enter();
        std::lock_guard<std::mutex> lock(order_mutex);
        order.push_back(job.id);
        return TestResult{job.id};
    });

    // The gate job occupies the only worker; everything submitted
    // while it blocks accumulates in the pending list.
    queue.submit(0, 1000, TestJob{0});
    gate.waitEntered();
    queue.submit(1, 1, TestJob{1});
    queue.submit(2, 5, TestJob{2});
    queue.submit(3, 3, TestJob{3});
    EXPECT_EQ(queue.pendingCount(), 3u);

    gate.release();
    queue.waitIdle();
    // Priority order (5, 3, 1), not submission order (1, 5, 3).
    EXPECT_EQ(order, (std::vector<int>{0, 2, 3, 1}));
}

TEST(BackgroundQueue, EqualPrioritiesKeepSubmissionOrder)
{
    Gate gate;
    std::mutex order_mutex;
    std::vector<int> order;
    TestQueue queue(1, [&](TestJob &job) {
        if (job.id == 0)
            gate.enter();
        std::lock_guard<std::mutex> lock(order_mutex);
        order.push_back(job.id);
        return TestResult{job.id};
    });

    queue.submit(0, 1000, TestJob{0});
    gate.waitEntered();
    for (int id = 1; id <= 4; ++id)
        queue.submit(uint64_t(id), 7, TestJob{id});
    gate.release();
    queue.waitIdle();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(BackgroundQueue, CancelDropsPendingItemsForOneKeyOnly)
{
    Gate gate;
    TestQueue queue(1, [&](TestJob &job) {
        if (job.id == 0)
            gate.enter();
        return TestResult{job.id};
    });

    queue.submit(99, 1000, TestJob{0});
    gate.waitEntered();
    queue.submit(42, 1, TestJob{1});
    queue.submit(42, 2, TestJob{2});
    queue.submit(7, 3, TestJob{3});

    // Both pending items for key 42 drop; key 7 survives, and the
    // in-flight gate job is untouched (cancel never reaches running
    // work — staleness is the consumer's problem).
    EXPECT_EQ(queue.cancel(42), 2u);
    EXPECT_EQ(queue.cancel(1234), 0u);
    EXPECT_EQ(queue.pendingCount(), 1u);

    gate.release();
    queue.waitIdle();
    EXPECT_EQ(queue.executedCount(), 2u);   // gate + key 7

    std::vector<TestResult> results;
    queue.takeCompleted(results);
    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0].id, 0);
    EXPECT_EQ(results[1].id, 3);
}

TEST(BackgroundQueue, ShedAllReturnsTheDroppedKeys)
{
    Gate gate;
    TestQueue queue(1, [&](TestJob &job) {
        if (job.id == 0)
            gate.enter();
        return TestResult{job.id};
    });

    queue.submit(5, 1000, TestJob{0});
    gate.waitEntered();
    queue.submit(10, 1, TestJob{1});
    queue.submit(20, 2, TestJob{2});
    queue.submit(30, 3, TestJob{3});

    const std::vector<uint64_t> keys = queue.shedAll();
    EXPECT_EQ(keys, (std::vector<uint64_t>{10, 20, 30}));
    EXPECT_EQ(queue.pendingCount(), 0u);

    gate.release();
    queue.waitIdle();
    EXPECT_EQ(queue.executedCount(), 1u);
}

TEST(BackgroundQueue, CancelTokenDropsPendingWork)
{
    CancelSource source;
    unsigned ran = 0;
    TestQueue queue(0, [&](TestJob &job) {
        ++ran;
        return TestResult{job.id};
    });
    queue.setCancelToken(source.token());

    queue.submit(1, 0, TestJob{1});
    EXPECT_EQ(ran, 1u);

    source.cancel();
    queue.submit(2, 0, TestJob{2});
    // The pump saw the tripped token and dropped the item instead of
    // running it.
    EXPECT_EQ(ran, 1u);
    EXPECT_EQ(queue.executedCount(), 1u);
    EXPECT_EQ(queue.pendingCount(), 0u);
}

TEST(BackgroundQueue, RunnerExceptionSurfacesFromWaitIdle)
{
    TestQueue queue(2, [](TestJob &job) -> TestResult {
        if (job.id < 0)
            throw std::runtime_error("worker failure");
        return TestResult{job.id};
    });
    queue.submit(1, 0, TestJob{-1});
    EXPECT_THROW(queue.waitIdle(), std::runtime_error);
    // The queue survives a failed job: later work runs normally.
    queue.submit(2, 0, TestJob{2});
    EXPECT_NO_THROW(queue.waitIdle());
    std::vector<TestResult> results;
    queue.takeCompleted(results);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].id, 2);
}

TEST(BackgroundQueue, MemoryBytesTracksPendingAndCompleted)
{
    Gate gate;
    TestQueue queue(1, [&](TestJob &job) {
        if (job.id == 0)
            gate.enter();
        return TestResult{job.id};
    });
    const size_t empty = queue.memoryBytes();

    queue.submit(0, 1000, TestJob{0});
    gate.waitEntered();
    queue.submit(1, 1, TestJob{1});
    EXPECT_GT(queue.memoryBytes(), empty);

    gate.release();
    queue.waitIdle();
    // Undrained results still count until the consumer takes them.
    EXPECT_GT(queue.memoryBytes(), empty);
    std::vector<TestResult> results;
    queue.takeCompleted(results);
    EXPECT_EQ(queue.memoryBytes(), empty);
}

/**
 * TSan target: four workers racing the producer thread through
 * submit / cancel / shedAll / takeCompleted.  The invariant checked
 * at the end — every submitted job either executed or was dropped by
 * an explicit cancel/shed, and every executed job's result was
 * collected — would be violated by any lost-wakeup or double-pop bug.
 */
TEST(BackgroundQueueStress, ConcurrentSubmitCancelShedHammer)
{
    std::atomic<uint64_t> ran{0};
    TestQueue queue(4, [&](TestJob &job) {
        ran.fetch_add(1, std::memory_order_relaxed);
        return TestResult{job.id};
    });

    Rng rng(0x7135);
    uint64_t submitted = 0, dropped = 0;
    std::vector<TestResult> results;
    for (int step = 0; step < 3000; ++step) {
        switch (rng.below(10)) {
          case 0:
            dropped += queue.cancel(uint64_t(step % 7));
            break;
          case 1:
            if (step % 13 == 0)
                dropped += queue.shedAll().size();
            break;
          case 2:
            if (queue.hasCompleted())
                queue.takeCompleted(results);
            break;
          default:
            queue.submit(uint64_t(step % 7), int64_t(rng.below(5)),
                         TestJob{step});
            ++submitted;
            break;
        }
    }
    queue.waitIdle();
    queue.takeCompleted(results);

    EXPECT_EQ(queue.pendingCount(), 0u);
    EXPECT_EQ(queue.executedCount() + dropped, submitted);
    EXPECT_EQ(results.size(), queue.executedCount());
    EXPECT_EQ(ran.load(), queue.executedCount());
}

TEST(BackgroundQueueStress, SetCancelTokenRacesWithWorkerPump)
{
    // Regression for a missed guard found by the thread-safety
    // annotation sweep: setCancelToken() rebound the stored token (a
    // shared_ptr copy) without the queue mutex while workers read it
    // inside pump()'s critical section.  The token is now
    // GUARDED_BY(mutex_); this hammer runs rebinding and pumping
    // concurrently so the tier-1 TSan sync stage would catch any
    // relapse.
    std::atomic<uint64_t> ran{0};
    TestQueue queue(4, [&](TestJob &job) {
        ran.fetch_add(1, std::memory_order_relaxed);
        return TestResult{job.id};
    });

    std::atomic<bool> stop{false};
    std::thread rebinder([&] {
        while (!stop.load(std::memory_order_acquire)) {
            CancelSource source;        // fresh, untripped state
            queue.setCancelToken(source.token());
        }
    });
    for (int i = 0; i < 2000; ++i)
        queue.submit(uint64_t(i % 5), i % 3, TestJob{i});
    queue.waitIdle();
    stop.store(true, std::memory_order_release);
    rebinder.join();

    // Every token installed was untripped, so nothing was dropped.
    EXPECT_EQ(queue.pendingCount(), 0u);
    EXPECT_EQ(queue.executedCount(), 2000u);
    EXPECT_EQ(ran.load(), 2000u);
}

TEST(BackgroundQueue, CancelDuringPopWindowRunsToCompletion)
{
    // Documents the cancel(key)-vs-worker-pop window the annotation
    // sweep examined: an item a worker has already popped is beyond
    // cancel's reach — cancel(key) returns 0, the job runs to
    // completion, and its (now stale) result still arrives in the
    // inbox.  Consumers must detect staleness themselves; the tier
    // engine does so with frame-id checks at publication, and keeps
    // the key in its in-flight set until the stale result is drained
    // (which is what re-arms wantsReopt for that frame).
    Gate gate;
    TestQueue queue(1, [&](TestJob &job) {
        if (job.id == 0)
            gate.enter();
        return TestResult{job.id};
    });

    queue.submit(42, 0, TestJob{0});
    gate.waitEntered();
    // The worker holds the popped item; nothing is pending.
    EXPECT_EQ(queue.cancel(42), 0u);
    gate.release();
    queue.waitIdle();

    EXPECT_EQ(queue.executedCount(), 1u);
    std::vector<TestResult> results;
    queue.takeCompleted(results);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].id, 0);
}

// ---------------------------------------------------------------------
// FrameCache versioned-slot publication
// ---------------------------------------------------------------------

namespace {

FramePtr
makeFrame(uint32_t pc, unsigned uops)
{
    auto f = std::make_shared<Frame>();
    f->startPc = pc;
    f->pcs = {pc};
    f->body.resize(uops);
    return f;
}

} // namespace

TEST(FrameCachePublish, SwapUpdatesBodyWithoutTouchingLru)
{
    FrameCache cache(100);
    cache.insert(makeFrame(0x1000, 30));
    cache.insert(makeFrame(0x2000, 30));
    (void)cache.lookup(0x1000);     // 0x2000 is now the LRU entry

    ASSERT_TRUE(cache.publish(0x2000, makeFrame(0x2000, 10)));
    EXPECT_EQ(cache.occupiedUops(), 40u);
    EXPECT_EQ(cache.probe(0x2000)->numUops(), 10u);
    EXPECT_EQ(cache.stats().get("publishes"), 1u);

    // Publication is not a use: 0x2000 must still be the eviction
    // victim when a newcomer needs the space.
    cache.insert(makeFrame(0x3000, 70));
    EXPECT_EQ(cache.probe(0x2000), nullptr);
    EXPECT_NE(cache.probe(0x1000), nullptr);
    EXPECT_NE(cache.probe(0x3000), nullptr);
}

TEST(FrameCachePublish, OversizePublishIsRejectedIntact)
{
    FrameCache cache(100);
    cache.insert(makeFrame(0x1000, 60));
    cache.insert(makeFrame(0x2000, 40));

    // Growing 60 -> 70 would overflow capacity: rejected, untouched.
    EXPECT_FALSE(cache.publish(0x1000, makeFrame(0x1000, 70)));
    EXPECT_EQ(cache.occupiedUops(), 100u);
    EXPECT_EQ(cache.probe(0x1000)->numUops(), 60u);
    EXPECT_EQ(cache.stats().get("publish_rejects"), 1u);

    // Shrinking (the normal re-opt case) always lands.
    EXPECT_TRUE(cache.publish(0x1000, makeFrame(0x1000, 50)));
    EXPECT_EQ(cache.occupiedUops(), 90u);
}

TEST(FrameCacheAudit, GovernorModelMatchesDirectRecountAfterChurn)
{
    // The O(1) occupancy model feeds the governor; tier republication
    // is the one path where a resident body's size changes in place,
    // so drive insert/publish/evict/shed churn and check the model
    // against a from-scratch recount at every step.
    ResourceGovernor governor;
    FrameCache cache(300);
    cache.setGovernor(&governor);
    const unsigned gov_id = 0;      // first registered consumer

    auto audit = [&](const char *where) {
        EXPECT_EQ(cache.occupiedUops(), cache.recountUops()) << where;
        EXPECT_EQ(cache.memoryBytes(), cache.auditBytes()) << where;
        EXPECT_EQ(governor.consumerBytes(gov_id), cache.memoryBytes())
            << where;
    };

    for (uint32_t pc = 0x1000; pc < 0x1000 + 8 * 0x100; pc += 0x100)
        cache.insert(makeFrame(pc, 30));
    audit("after inserts (with capacity evictions)");

    // Republish half the residents with shrunken bodies (the normal
    // re-opt outcome), one with a grown body, and one oversize reject.
    unsigned flip = 0;
    for (uint32_t pc = 0x1000; pc < 0x1000 + 8 * 0x100; pc += 0x100) {
        if (!cache.probe(pc))
            continue;
        if (flip++ % 2 == 0) {
            ASSERT_TRUE(cache.publish(pc, makeFrame(pc, 12)));
            audit("after shrinking publish");
        }
    }
    for (uint32_t pc = 0x1000; pc < 0x1000 + 8 * 0x100; pc += 0x100) {
        if (!cache.probe(pc))
            continue;
        EXPECT_TRUE(cache.publish(pc, makeFrame(pc, 40)));
        audit("after growing publish");
        EXPECT_FALSE(cache.publish(pc, makeFrame(pc, 4000)));
        audit("after rejected oversize publish");
        break;
    }

    // Invalidate one, shed one, then re-fill; the model must track
    // every departure and arrival exactly.
    cache.invalidate(0x1200);
    audit("after invalidate");
    (void)cache.shedLru();
    audit("after shed");
    cache.insert(makeFrame(0x9000, 25));
    audit("after re-fill");
    EXPECT_GT(cache.stats().get("publishes"), 0u);
}

TEST(FrameCacheEviction, ListenerSeesEveryDepartureButNotPublishes)
{
    FrameCache cache(100);
    std::vector<uint32_t> evicted;
    cache.setEvictionListener(
        [&](uint32_t pc) { evicted.push_back(pc); });

    cache.insert(makeFrame(0x1000, 50));
    cache.insert(makeFrame(0x2000, 40));
    ASSERT_TRUE(cache.publish(0x2000, makeFrame(0x2000, 30)));
    EXPECT_TRUE(evicted.empty());   // a body swap is not a departure

    cache.insert(makeFrame(0x3000, 60));    // capacity-evicts 0x1000
    cache.invalidate(0x2000);
    (void)cache.shedLru();                  // sheds 0x3000
    EXPECT_EQ(evicted,
              (std::vector<uint32_t>{0x1000, 0x2000, 0x3000}));
}

// ---------------------------------------------------------------------
// End-to-end tiered engine runs
// ---------------------------------------------------------------------

namespace {

sim::RunStats
runTiered(const std::string &app, unsigned workers, bool deterministic,
          uint64_t insts = 30000, bool verify_online = false)
{
    SimConfig cfg = SimConfig::make(Machine::RPO);
    cfg.maxInsts = insts;
    cfg.verifyOnline = verify_online;
    cfg.engine.tier.workers = workers;
    cfg.engine.tier.deterministic = deterministic;
    auto src = trace::findWorkload(app).openTrace(0, cfg.maxInsts);
    sim::Simulator simulator(cfg);
    return simulator.run(*src);
}

/**
 * Every queued re-optimization must be accounted for: published,
 * rejected by the verifier, dropped as stale, cancelled on eviction,
 * shed under pressure, or dropped at exit.  A leak in the inflight
 * bookkeeping shows up as an imbalance here.
 */
void
expectTierAccountingBalances(const sim::RunStats &stats)
{
    EXPECT_EQ(stats.tierEnqueues,
              stats.tierPublishes + stats.tierVerifyRejects +
                  stats.tierStaleDrops + stats.tierCancelled +
                  stats.tierShed + stats.tierDroppedAtExit);
}

} // namespace

TEST(TierEngineRun, BackgroundReoptPublishesHotFrames)
{
    const sim::RunStats stats = runTiered("gzip", 2, false);
    EXPECT_GT(stats.frameCommits, 0u);
    EXPECT_GT(stats.tierEnqueues, 0u);
    EXPECT_GT(stats.tierReopts, 0u);
    EXPECT_GT(stats.tierPublishes, 0u);
    // The full pipeline removes micro-ops the cheap tier could not.
    EXPECT_GT(stats.tierUopsRemoved, 0u);
    EXPECT_EQ(stats.corruptFrameCommits, 0u);
    expectTierAccountingBalances(stats);
}

TEST(TierEngineRun, UntieredRunHasZeroTierCounters)
{
    const sim::RunStats stats = runTiered("gzip", 0, false);
    EXPECT_EQ(stats.tierEnqueues, 0u);
    EXPECT_EQ(stats.tierReopts, 0u);
    EXPECT_EQ(stats.tierPublishes, 0u);
    EXPECT_EQ(stats.tierDroppedAtExit, 0u);
}

TEST(TierEngineRun, DeterministicTierModeIsReproducible)
{
    const sim::RunStats a = runTiered("bzip2", 1, true);
    const sim::RunStats b = runTiered("bzip2", 1, true);
    EXPECT_GT(a.tierPublishes, 0u);
    EXPECT_EQ(a.fingerprint(), b.fingerprint());
    expectTierAccountingBalances(a);
}

/**
 * The acceptance bar for the whole tier: whether re-optimization runs
 * synchronously at admission (tier off), asynchronously on background
 * workers, or inline in deterministic mode, every workload must retire
 * the same architectural state — same online-verifier digest, zero
 * detections, zero corrupt commits.  Timing may differ (publication
 * points shift); semantics may not.
 */
TEST(TierConvergence, AsyncMatchesSyncArchitecturalDigest)
{
    for (const auto &workload : trace::standardWorkloads()) {
        const sim::RunStats sync =
            runTiered(workload.name, 0, false, 16000, true);
        const sim::RunStats async =
            runTiered(workload.name, 2, false, 16000, true);
        const sim::RunStats det =
            runTiered(workload.name, 1, true, 16000, true);

        ASSERT_TRUE(sync.archDigestValid) << workload.name;
        ASSERT_TRUE(async.archDigestValid) << workload.name;
        ASSERT_TRUE(det.archDigestValid) << workload.name;
        EXPECT_EQ(async.archDigest, sync.archDigest) << workload.name;
        EXPECT_EQ(det.archDigest, sync.archDigest) << workload.name;

        EXPECT_EQ(sync.verifyDetections, 0u) << workload.name;
        EXPECT_EQ(async.verifyDetections, 0u) << workload.name;
        EXPECT_EQ(det.verifyDetections, 0u) << workload.name;
        EXPECT_EQ(async.corruptFrameCommits, 0u) << workload.name;
        EXPECT_EQ(det.corruptFrameCommits, 0u) << workload.name;

        expectTierAccountingBalances(async);
        expectTierAccountingBalances(det);
    }
}

TEST(TierSweep, DeterministicTierDigestStableAcrossJobs)
{
    const auto cells = sim::gridCells(
        {&trace::findWorkload("gzip"), &trace::findWorkload("bzip2")},
        {{"RPO-tier", SimConfig::make(Machine::RPO)}});

    sim::SweepOptions serial;
    serial.jobs = 1;
    serial.instsPerTrace = 8000;
    serial.warmup = false;
    serial.tierWorkers = 1;
    serial.tierDeterministic = true;
    sim::SweepOptions parallel = serial;
    parallel.jobs = 4;

    const auto a = sim::runSweep(cells, serial);
    const auto b = sim::runSweep(cells, parallel);
    EXPECT_GT(a.cells[0].tierEnqueues, 0u);
    EXPECT_EQ(a.digest(), b.digest());
}

/**
 * TSan target for the full publish/acquire protocol: many short
 * governed, tiered runs back to back, with async workers racing the
 * sequencer thread through enqueue, drain, publish, eviction-cancel,
 * and pressure-shed.  Correctness is the accounting invariant plus a
 * clean online-verifier record on every iteration.
 */
TEST(TierStress, GovernedTieredSoakKeepsAccountsBalanced)
{
    for (unsigned round = 0; round < 6; ++round) {
        SimConfig cfg = SimConfig::make(Machine::RPO);
        cfg.maxInsts = 12000;
        cfg.verifyOnline = true;
        cfg.engine.tier.workers = 2 + round % 3;
        cfg.governor.budgetBytes = (192u + 64u * (round % 4)) << 10;
        const auto &workloads = trace::standardWorkloads();
        const auto &workload = workloads[round % workloads.size()];
        auto src = workload.openTrace(0, cfg.maxInsts);
        sim::Simulator simulator(cfg);
        const sim::RunStats stats = simulator.run(*src);

        EXPECT_GE(stats.x86Retired, cfg.maxInsts) << workload.name;
        EXPECT_EQ(stats.verifyDetections, 0u) << workload.name;
        EXPECT_EQ(stats.corruptFrameCommits, 0u) << workload.name;
        expectTierAccountingBalances(stats);
    }
}
