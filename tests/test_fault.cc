/**
 * @file
 * Fault-injection harness tests: every armed corruption injected into a
 * frame must be caught by the online verifier before it commits, roll
 * back through the verify-recovery path, and leave the architectural
 * record stream bit-identical to a fault-free run; damaged trace files
 * must degrade to their valid prefix instead of killing the process.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "fault/faultinjector.hh"
#include "sim/simulator.hh"
#include "trace/tracefile.hh"
#include "trace/workload.hh"

using namespace replay;
using namespace replay::sim;
using fault::FaultInjector;
using timing::CycleBin;
using trace::FileTraceSource;
using trace::TraceError;
using trace::TraceFileWriter;

namespace {

constexpr uint64_t INSTS = 50000;

RunStats
faultRun(const std::string &workload, Machine machine, double flip_rate,
         double sabotage_rate, uint64_t seed = 1)
{
    SimConfig cfg = SimConfig::make(machine);
    cfg.maxInsts = INSTS;
    cfg.verifyOnline = true;
    cfg.fault.seed = seed;
    cfg.fault.fetchFlipRate = flip_rate;
    cfg.fault.passSabotageRate = sabotage_rate;
    auto src = trace::findWorkload(workload).openTrace(0, INSTS);
    return simulateTrace(cfg, *src, workload);
}

} // namespace

// ---------------------------------------------------------------------
// Online verification, clean runs
// ---------------------------------------------------------------------

TEST(OnlineVerify, CleanRunChecksEveryCommitAndDetectsNothing)
{
    const RunStats stats = faultRun("gzip", Machine::RPO, 0.0, 0.0);
    EXPECT_GT(stats.frameCommits, 0u);
    EXPECT_GT(stats.verifyChecks, 0u);
    EXPECT_EQ(stats.verifyDetections, 0u);
    EXPECT_EQ(stats.corruptFrameCommits, 0u);
    EXPECT_EQ(stats.quarantines, 0u);
    EXPECT_EQ(stats.bins.get(CycleBin::VERIFY), 0u);
    EXPECT_TRUE(stats.archDigestValid);
}

TEST(OnlineVerify, DigestIdenticalAcrossMachines)
{
    // The digest is the architectural state at exactly INSTS retired
    // instructions; the machine only changes timing, never state.
    const uint64_t ic = faultRun("parser", Machine::IC, 0.0, 0.0)
                            .archDigest;
    const uint64_t rp = faultRun("parser", Machine::RP, 0.0, 0.0)
                            .archDigest;
    const uint64_t rpo = faultRun("parser", Machine::RPO, 0.0, 0.0)
                             .archDigest;
    EXPECT_EQ(ic, rp);
    EXPECT_EQ(ic, rpo);
}

TEST(OnlineVerify, ZeroRateMatchesSeedTiming)
{
    // verifyOnline must not perturb timing: same cycles with the
    // verifier on and off.
    SimConfig cfg = SimConfig::make(Machine::RPO);
    cfg.maxInsts = INSTS;
    auto src = trace::findWorkload("gzip").openTrace(0, INSTS);
    const RunStats off = simulateTrace(cfg, *src, "gzip");
    const RunStats on = faultRun("gzip", Machine::RPO, 0.0, 0.0);
    EXPECT_EQ(off.cycles(), on.cycles());
    EXPECT_EQ(off.frameCommits, on.frameCommits);
    EXPECT_EQ(off.uopsExecuted, on.uopsExecuted);
}

// ---------------------------------------------------------------------
// Injected frame corruption: the 100% detection obligation
// ---------------------------------------------------------------------

TEST(FaultInjection, SeededFetchFlipsAllDetectedAndStateClean)
{
    const uint64_t clean_digest =
        faultRun("gzip", Machine::RPO, 0.0, 0.0).archDigest;

    uint64_t total_flips = 0, total_detections = 0;
    for (const uint64_t seed : {1, 7, 23, 99, 1234}) {
        const RunStats stats =
            faultRun("gzip", Machine::RPO, 0.02, 0.0, seed);

        // Obligation: no frame carrying an armed corruption commits.
        EXPECT_EQ(stats.corruptFrameCommits, 0u) << "seed " << seed;
        // Every detection rolled back and quarantined the frame.
        EXPECT_EQ(stats.quarantines, stats.verifyDetections);
        // Recovery is accounted in its own cycle bin.
        if (stats.verifyDetections > 0) {
            EXPECT_GT(stats.bins.get(CycleBin::VERIFY), 0u);
        }
        // Graceful degradation, not divergence: the retired record
        // stream (and so the architectural state at the instruction
        // budget) matches the fault-free run bit for bit.
        EXPECT_EQ(stats.archDigest, clean_digest) << "seed " << seed;

        total_flips += stats.faultsFetchFlip;
        total_detections += stats.verifyDetections;
    }
    // The property is vacuous unless faults were actually injected and
    // actually caught.
    EXPECT_GT(total_flips, 10u);
    EXPECT_GT(total_detections, 0u);
}

TEST(FaultInjection, PassSabotageDetectedBeforeCommit)
{
    const uint64_t clean_digest =
        faultRun("crafty", Machine::RPO, 0.0, 0.0).archDigest;

    uint64_t total_sabotage = 0, total_detections = 0;
    for (const uint64_t seed : {3, 17, 4242}) {
        const RunStats stats =
            faultRun("crafty", Machine::RPO, 0.0, 0.25, seed);
        EXPECT_EQ(stats.corruptFrameCommits, 0u) << "seed " << seed;
        EXPECT_EQ(stats.quarantines, stats.verifyDetections);
        EXPECT_EQ(stats.archDigest, clean_digest) << "seed " << seed;
        total_sabotage += stats.faultsPassSabotage;
        total_detections += stats.verifyDetections;
    }
    EXPECT_GT(total_sabotage, 0u);
    EXPECT_GT(total_detections, 0u);
}

TEST(FaultInjection, QuarantineDegradesToConventionalFetch)
{
    const RunStats stats =
        faultRun("gzip", Machine::RPO, 0.05, 0.0, 11);
    if (stats.verifyDetections == 0)
        GTEST_SKIP() << "no detections at this seed/rate";
    // Quarantined PCs deny frame fetch and candidate construction for
    // a while; the run still completes its full instruction budget.
    EXPECT_GE(stats.x86Retired, INSTS);
    EXPECT_GT(stats.quarantineBlocks + stats.quarantineDrops, 0u);
}

TEST(FaultInjection, DeterministicUnderSeed)
{
    const RunStats a = faultRun("vortex", Machine::RPO, 0.03, 0.1, 5);
    const RunStats b = faultRun("vortex", Machine::RPO, 0.03, 0.1, 5);
    EXPECT_EQ(a.cycles(), b.cycles());
    EXPECT_EQ(a.faultsFetchFlip, b.faultsFetchFlip);
    EXPECT_EQ(a.faultsPassSabotage, b.faultsPassSabotage);
    EXPECT_EQ(a.verifyDetections, b.verifyDetections);
    EXPECT_EQ(a.quarantines, b.quarantines);
    EXPECT_EQ(a.archDigest, b.archDigest);
}

// ---------------------------------------------------------------------
// Trace-file robustness (injection site (a))
// ---------------------------------------------------------------------

namespace {

std::string
dumpTrace(const std::string &name, uint64_t insts,
          const std::string &tag)
{
    const auto &w = trace::findWorkload(name);
    const std::string path =
        ::testing::TempDir() + name + "." + tag + ".rplt";
    TraceFileWriter::dumpProgram(w.buildProgram(0), insts, path);
    return path;
}

} // namespace

TEST(TraceRobustness, TruncatedFileYieldsValidPrefix)
{
    const std::string path = dumpTrace("gzip", 2000, "trunc");
    const uint64_t size = std::filesystem::file_size(path);
    ASSERT_TRUE(FaultInjector::truncateFile(path, size - 7));

    FileTraceSource src(path);
    EXPECT_TRUE(src.ok());      // header intact; error surfaces later
    uint64_t n = 0;
    while (!src.done()) {
        ASSERT_NE(src.peek(), nullptr);
        src.advance();
        ++n;
    }
    EXPECT_EQ(n, 1999u);
    EXPECT_EQ(src.error().kind, TraceError::Kind::TRUNCATED);
}

TEST(TraceRobustness, SimulatorCompletesOnTruncatedTrace)
{
    const std::string path = dumpTrace("gzip", 3000, "simtrunc");
    const uint64_t size = std::filesystem::file_size(path);
    ASSERT_TRUE(FaultInjector::truncateFile(path, size / 2));

    FileTraceSource src(path);
    SimConfig cfg = SimConfig::make(Machine::RPO);
    const RunStats stats = simulateTrace(cfg, src, "gzip");
    EXPECT_GT(stats.x86Retired, 0u);
    EXPECT_LT(stats.x86Retired, 3000u);
    EXPECT_EQ(stats.x86Retired, src.consumed());
}

TEST(TraceRobustness, GarbageFileIsEmptyWithBadMagic)
{
    const std::string path = ::testing::TempDir() + "garbage.rplt";
    {
        std::ofstream out(path, std::ios::binary);
        out << "this is not a trace file at all, not even close";
    }
    FileTraceSource src(path);
    EXPECT_FALSE(src.ok());
    EXPECT_EQ(src.error().kind, TraceError::Kind::BAD_MAGIC);
    EXPECT_TRUE(src.done());
    EXPECT_EQ(src.peek(), nullptr);
}

TEST(TraceRobustness, MissingFileReportsOpenFailure)
{
    FileTraceSource src(::testing::TempDir() + "does-not-exist.rplt");
    EXPECT_FALSE(src.ok());
    EXPECT_EQ(src.error().kind, TraceError::Kind::OPEN_FAILED);
    EXPECT_TRUE(src.done());
}

TEST(TraceRobustness, BitFlippedRecordCaughtByChecksum)
{
    const std::string path = dumpTrace("gzip", 1000, "flip");
    // Skip the 20-byte header so the damage lands in record payloads.
    const unsigned flipped =
        FaultInjector::corruptFileBytes(path, 42, 0.0005, 20);
    ASSERT_GT(flipped, 0u);

    FileTraceSource src(path);
    EXPECT_TRUE(src.ok());
    uint64_t n = 0;
    while (!src.done()) {
        src.advance();
        ++n;
    }
    EXPECT_LT(n, 1000u);
    EXPECT_EQ(src.error().kind, TraceError::Kind::BAD_CHECKSUM);
}

TEST(TraceRobustness, WriterSurfacesOpenFailure)
{
    TraceFileWriter writer(::testing::TempDir() +
                           "no-such-dir/x/y/z.rplt");
    EXPECT_FALSE(writer.ok());
    EXPECT_EQ(writer.error().kind, TraceError::Kind::OPEN_FAILED);
    writer.write(trace::TraceRecord{});      // must be a safe no-op
    const TraceError err = writer.close();
    EXPECT_EQ(err.kind, TraceError::Kind::OPEN_FAILED);
}

TEST(TraceRobustness, WriterRoundTripReportsNoError)
{
    const auto &w = trace::findWorkload("bzip2");
    const std::string path = ::testing::TempDir() + "clean.rplt";
    TraceFileWriter::dumpProgram(w.buildProgram(0), 500, path);
    FileTraceSource src(path);
    EXPECT_TRUE(src.ok());
    EXPECT_EQ(src.totalRecords(), 500u);
    uint64_t n = 0;
    while (!src.done()) {
        src.advance();
        ++n;
    }
    EXPECT_EQ(n, 500u);
    EXPECT_TRUE(src.ok());
}

// ---------------------------------------------------------------------
// Injector internals
// ---------------------------------------------------------------------

TEST(FaultInjector, DisabledConfigNeverFires)
{
    fault::FaultConfig cfg;
    EXPECT_FALSE(cfg.enabled());
    FaultInjector injector(cfg);
    opt::OptimizedFrame body;
    for (int i = 0; i < 1000; ++i) {
        EXPECT_FALSE(injector.maybeFlipOnFetch(body));
        EXPECT_FALSE(injector.maybeSabotagePass(body));
    }
}

TEST(FaultInjector, EmptyBodyHasNoArmedTarget)
{
    fault::FaultConfig cfg;
    cfg.fetchFlipRate = 1.0;
    FaultInjector injector(cfg);
    opt::OptimizedFrame body;       // no uops, no exit bindings
    EXPECT_FALSE(injector.maybeFlipOnFetch(body));
    EXPECT_EQ(injector.stats().get("no_target"), 1u);
}
