/**
 * @file
 * Optimizer tests: the Figure 2 crafty fragment end-to-end (frame scope
 * and block scope), per-pass behaviour, speculative memory optimization
 * with unsafe stores, and functional equivalence of optimized frames.
 */

#include <gtest/gtest.h>

#include <limits>

#include "core/constructor.hh"
#include "opt/datapath.hh"
#include "opt/frameexec.hh"
#include "opt/optimizer.hh"
#include "uop/evaluator.hh"
#include "util/rng.hh"

using namespace replay;
using namespace replay::opt;
using namespace replay::uop;
using x86::Cond;

namespace {

/** Terse micro-op builders for hand-written frames. */
Uop
mkAlu(Op op, UReg dst, UReg a, UReg b, bool flags = true)
{
    Uop u;
    u.op = op;
    u.dst = dst;
    u.srcA = a;
    u.srcB = b;
    u.writesFlags = flags;
    return u;
}

Uop
mkAluI(Op op, UReg dst, UReg a, int32_t imm, bool flags = true)
{
    Uop u;
    u.op = op;
    u.dst = dst;
    u.srcA = a;
    u.imm = imm;
    u.writesFlags = flags;
    return u;
}

Uop
mkLimm(UReg dst, int32_t imm)
{
    Uop u;
    u.op = Op::LIMM;
    u.dst = dst;
    u.imm = imm;
    return u;
}

Uop
mkMov(UReg dst, UReg src)
{
    Uop u;
    u.op = Op::MOV;
    u.dst = dst;
    u.srcA = src;
    return u;
}

Uop
mkLoad(UReg dst, UReg base, int32_t disp)
{
    Uop u;
    u.op = Op::LOAD;
    u.dst = dst;
    u.srcA = base;
    u.imm = disp;
    return u;
}

Uop
mkStore(UReg base, int32_t disp, UReg value)
{
    Uop u;
    u.op = Op::STORE;
    u.srcA = base;
    u.imm = disp;
    u.srcB = value;
    return u;
}

Uop
mkAssert(Cond cc)
{
    Uop u;
    u.op = Op::ASSERT;
    u.cc = cc;
    u.readsFlags = true;
    return u;
}

Uop
mkJmpi(UReg target)
{
    Uop u;
    u.op = Op::JMPI;
    u.srcA = target;
    return u;
}

/** The seventeen micro-ops of Figure 2, as a frame. */
std::pair<std::vector<Uop>, std::vector<uint16_t>>
figure2Frame()
{
    std::vector<Uop> u;
    // Block 1: PUSH EBP; PUSH EBX; MOV ECX,[ESP+0C]; MOV EBX,[ESP+10];
    //          XOR EAX,EAX; MOV EDX,ECX; OR EDX,EBX; JZ (biased taken)
    u.push_back(mkStore(UReg::ESP, -4, UReg::EBP));             // 01
    u.push_back(mkAluI(Op::SUB, UReg::ESP, UReg::ESP, 4, false)); // 02
    u.push_back(mkStore(UReg::ESP, -4, UReg::EBX));             // 03
    u.push_back(mkAluI(Op::SUB, UReg::ESP, UReg::ESP, 4, false)); // 04
    u.push_back(mkLoad(UReg::ECX, UReg::ESP, 0x0c));            // 05
    u.push_back(mkLoad(UReg::EBX, UReg::ESP, 0x10));            // 06
    u.push_back(mkAlu(Op::XOR, UReg::EAX, UReg::EAX, UReg::EAX)); // 07
    u.push_back(mkMov(UReg::EDX, UReg::ECX));                   // 08
    u.push_back(mkAlu(Op::OR, UReg::EDX, UReg::EDX, UReg::EBX)); // 09
    u.push_back(mkAssert(Cond::E));                             // 10
    // Block 2: POP EBX; POP EBP; RET
    u.push_back(mkAluI(Op::ADD, UReg::ESP, UReg::ESP, 4, false)); // 11
    u.push_back(mkLoad(UReg::EBX, UReg::ESP, -4));              // 12
    u.push_back(mkAluI(Op::ADD, UReg::ESP, UReg::ESP, 4, false)); // 13
    u.push_back(mkLoad(UReg::EBP, UReg::ESP, -4));              // 14
    u.push_back(mkLoad(UReg::ET2, UReg::ESP, 0));               // 15
    u.push_back(mkAluI(Op::ADD, UReg::ESP, UReg::ESP, 4, false)); // 16
    u.push_back(mkJmpi(UReg::ET2));                             // 17

    std::vector<uint16_t> blocks(17, 0);
    for (size_t i = 10; i < 17; ++i)
        blocks[i] = 1;
    return {u, blocks};
}

/** Execute an architectural micro-op sequence (the reference). */
ArchState
runReference(const std::vector<Uop> &uops, const ArchState &in,
             x86::SparseMemory &mem)
{
    Evaluator eval(mem);
    for (unsigned r = 0; r < NUM_UREGS; ++r)
        eval.setReg(static_cast<UReg>(r), in.regs[r]);
    eval.setFlags(in.flags);
    for (const auto &u : uops) {
        const auto res = eval.exec(u);
        EXPECT_FALSE(res.asserted);
    }
    ArchState out;
    for (unsigned r = 0; r < NUM_UREGS; ++r)
        out.regs[r] = eval.reg(static_cast<UReg>(r));
    out.flags = eval.flags();
    return out;
}

/** Compare non-temporary architectural state. */
void
expectArchEqual(const ArchState &a, const ArchState &b)
{
    for (unsigned r = 0; r < NUM_UREGS; ++r) {
        const auto reg = static_cast<UReg>(r);
        if (!OptBuffer::archLiveOut(reg))
            continue;
        EXPECT_EQ(a.regs[r], b.regs[r]) << "reg " << uregName(reg);
    }
    EXPECT_EQ(a.flags.pack(), b.flags.pack()) << "flags";
}

class AllowAllHints : public AliasHints
{
  public:
    bool
    cleanForSpeculation(uint32_t, uint8_t) const override
    {
        return true;
    }
};

class DenyAllHints : public AliasHints
{
  public:
    bool
    cleanForSpeculation(uint32_t, uint8_t) const override
    {
        return false;
    }
};

} // namespace

// ---------------------------------------------------------------------
// Figure 2
// ---------------------------------------------------------------------

TEST(Figure2, FrameScopeRemovesSevenOfSeventeen)
{
    const auto [uops, blocks] = figure2Frame();
    Optimizer optimizer;                    // all optimizations on
    OptStats stats;
    const auto frame = optimizer.optimize(uops, blocks, nullptr, stats);

    // "Overall, seven of the seventeen micro-operations are removed,
    //  including two of the five loads."
    EXPECT_EQ(frame.inputUops, 17u);
    EXPECT_EQ(frame.numUops(), 10u);
    EXPECT_EQ(frame.inputLoads, 5u);
    EXPECT_EQ(frame.outputLoads, 3u);
}

TEST(Figure2, FrameScopeProducesThePaperBody)
{
    const auto [uops, blocks] = figure2Frame();
    Optimizer optimizer;
    OptStats stats;
    const auto frame = optimizer.optimize(uops, blocks, nullptr, stats);

    // Two stores survive at [live-in ESP - 4] and [ESP - 8].
    std::vector<int32_t> store_disps;
    std::vector<int32_t> load_disps;
    for (const FrameUop fu : frame) {
        if (fu.uop.isStore()) {
            EXPECT_EQ(fu.srcA, Operand::liveIn(UReg::ESP));
            store_disps.push_back(fu.uop.imm);
        }
        if (fu.uop.isLoad()) {
            EXPECT_EQ(fu.srcA, Operand::liveIn(UReg::ESP));
            load_disps.push_back(fu.uop.imm);
        }
    }
    EXPECT_EQ(store_disps, (std::vector<int32_t>{-4, -8}));
    // 05' [ESP+4], 06' [ESP+8], 15' [ESP].
    EXPECT_EQ(load_disps, (std::vector<int32_t>{4, 8, 0}));

    // The restored callee-save registers come straight from live-ins
    // (store forwarding), and ESP is a single +4 update.
    EXPECT_EQ(frame.exit.regs[unsigned(UReg::EBX)],
              Operand::liveIn(UReg::EBX));
    EXPECT_EQ(frame.exit.regs[unsigned(UReg::EBP)],
              Operand::liveIn(UReg::EBP));
    const Operand esp = frame.exit.regs[unsigned(UReg::ESP)];
    ASSERT_TRUE(esp.isProd());
    const FrameUop esp_uop = frame.at(esp.idx);
    EXPECT_EQ(esp_uop.uop.op, Op::ADD);
    EXPECT_EQ(esp_uop.srcA, Operand::liveIn(UReg::ESP));
    EXPECT_EQ(esp_uop.uop.imm, 4);

    // The OR survives as the assertion's producer, now reading the
    // parameter loads directly (copy propagation removed the MOV).
    bool found_or = false;
    for (const FrameUop fu : frame) {
        if (fu.uop.op == Op::OR) {
            found_or = true;
            EXPECT_TRUE(fu.srcA.isProd());
            EXPECT_TRUE(fu.srcB.isProd());
        }
    }
    EXPECT_TRUE(found_or);
}

TEST(Figure2, BlockScopeMatchesIntraBlockColumn)
{
    const auto [uops, blocks] = figure2Frame();
    OptConfig cfg;
    cfg.scope = Scope::BLOCK;
    Optimizer optimizer(cfg);
    OptStats stats;
    const auto frame = optimizer.optimize(uops, blocks, nullptr, stats);

    // Intra-block column keeps 13 micro-ops: the stack updates merge
    // within each block (02, 11, 13 die) and the MOV dies (08), but no
    // load can be removed without crossing a block.
    EXPECT_EQ(frame.numUops(), 13u);
    EXPECT_EQ(frame.outputLoads, 5u);
}

TEST(Figure2, OptimizedFrameIsFunctionallyEquivalent)
{
    const auto [uops, blocks] = figure2Frame();
    Optimizer optimizer;
    OptStats stats;
    const auto frame = optimizer.optimize(uops, blocks, nullptr, stats);

    ArchState in;
    in.regs[unsigned(UReg::ESP)] = 0x1000;
    in.regs[unsigned(UReg::EBP)] = 0xbbbb;
    in.regs[unsigned(UReg::EBX)] = 0xcccc;
    in.regs[unsigned(UReg::EAX)] = 0x1234;

    // Memory: parameters at [ESP+4]/[ESP+8], return address at [ESP],
    // chosen so EDX = p1|p2 == 0 and the assertion holds.
    x86::SparseMemory ref_mem;
    ref_mem.write(0x1000, 4, 0x4444);       // return address
    ref_mem.write(0x1004, 4, 0);            // param 1
    ref_mem.write(0x1008, 4, 0);            // param 2

    x86::SparseMemory opt_mem;
    opt_mem.write(0x1000, 4, 0x4444);
    opt_mem.write(0x1004, 4, 0);
    opt_mem.write(0x1008, 4, 0);

    const ArchState ref_out = runReference(uops, in, ref_mem);

    ArchState opt_state = in;
    const auto res = executeFrame(frame, opt_state, opt_mem);
    ASSERT_TRUE(res.committed());
    EXPECT_EQ(res.indirectTarget, 0x4444u);

    expectArchEqual(opt_state, ref_out);
    // Stores landed identically.
    EXPECT_EQ(opt_mem.read(0xffc, 4), ref_mem.read(0xffc, 4));
    EXPECT_EQ(opt_mem.read(0xff8, 4), ref_mem.read(0xff8, 4));
}

TEST(Figure2, AssertionFiresOnBiasViolation)
{
    const auto [uops, blocks] = figure2Frame();
    Optimizer optimizer;
    OptStats stats;
    const auto frame = optimizer.optimize(uops, blocks, nullptr, stats);

    ArchState in;
    in.regs[unsigned(UReg::ESP)] = 0x1000;
    x86::SparseMemory mem;
    mem.write(0x1004, 4, 7);    // nonzero parameter: OR != 0, JZ not
                                // taken, assertion must fire
    ArchState state = in;
    const auto res = executeFrame(frame, state, mem);
    EXPECT_EQ(res.status, FrameExecResult::Status::ASSERTED);
    // Rollback: nothing committed.
    EXPECT_EQ(mem.read(0xffc, 4), 0u);
    expectArchEqual(state, in);
}

// ---------------------------------------------------------------------
// Individual passes
// ---------------------------------------------------------------------

namespace {

OptimizedFrame
optimizeSimple(const std::vector<Uop> &uops, OptConfig cfg = {},
               const AliasHints *hints = nullptr)
{
    Optimizer optimizer(cfg);
    OptStats stats;
    return optimizer.optimize(uops, {}, hints, stats);
}

} // namespace

TEST(PassNop, RemovesNopsAndInternalJumps)
{
    std::vector<Uop> uops;
    Uop nop;
    nop.op = Op::NOP;
    uops.push_back(nop);
    Uop jmp;
    jmp.op = Op::JMP;
    jmp.target = 0x4000;
    uops.push_back(jmp);
    uops.push_back(mkStore(UReg::ESP, 0, UReg::EAX));

    const auto frame = optimizeSimple(uops);
    EXPECT_EQ(frame.numUops(), 1u);
    EXPECT_TRUE(frame.at(0).uop.isStore());
}

TEST(PassNop, DisabledKeepsThem)
{
    std::vector<Uop> uops;
    Uop jmp;
    jmp.op = Op::JMP;
    uops.push_back(jmp);
    uops.push_back(mkStore(UReg::ESP, 0, UReg::EAX));
    const auto frame = optimizeSimple(uops, OptConfig::without("NOP"));
    EXPECT_EQ(frame.numUops(), 2u);
}

TEST(PassAssert, CombinesCmpWithAssert)
{
    std::vector<Uop> uops;
    Uop cmp = mkAluI(Op::CMP, UReg::NONE, UReg::EAX, 7);
    uops.push_back(cmp);
    uops.push_back(mkAssert(Cond::E));
    uops.push_back(mkStore(UReg::ESP, 0, UReg::EAX));
    // Terminate flags liveness so the combined-away CMP can die (a
    // frame's final flag writer is conservatively live-out).
    uops.push_back(mkAlu(Op::XOR, UReg::EAX, UReg::EAX, UReg::EAX));

    const auto frame = optimizeSimple(uops);
    ASSERT_EQ(frame.numUops(), 3u);     // CMP died into the assert
    const FrameUop a = frame.at(0);
    EXPECT_EQ(a.uop.op, Op::ASSERT);
    EXPECT_TRUE(a.uop.valueAssert);
    EXPECT_EQ(a.uop.assertOp, Op::CMP);
    EXPECT_EQ(a.srcA, Operand::liveIn(UReg::EAX));
    EXPECT_EQ(a.uop.imm, 7);
}

TEST(PassAssert, KeepsCmpWithOtherFlagConsumers)
{
    std::vector<Uop> uops;
    uops.push_back(mkAluI(Op::CMP, UReg::NONE, UReg::EAX, 7));
    uops.push_back(mkAssert(Cond::E));
    Uop setcc;
    setcc.op = Op::SETCC;
    setcc.cc = Cond::NE;
    setcc.dst = UReg::EBX;
    setcc.srcA = UReg::EBX;
    setcc.readsFlags = true;
    uops.push_back(setcc);
    uops.push_back(mkStore(UReg::ESP, 0, UReg::EBX));

    const auto frame = optimizeSimple(uops);
    // CMP survives for the SETCC; assert is still combined.
    unsigned cmps = 0;
    for (const FrameUop fu : frame)
        cmps += fu.uop.op == Op::CMP;
    EXPECT_EQ(cmps, 1u);
}

TEST(PassConstProp, FoldsConstantChains)
{
    std::vector<Uop> uops;
    // Temporaries, so only the folded result and the store survive.
    uops.push_back(mkLimm(UReg::ET0, 5));
    uops.push_back(mkAluI(Op::ADD, UReg::ET1, UReg::ET0, 3, false));
    uops.push_back(mkAluI(Op::SHL, UReg::ET1, UReg::ET1, 2, false));
    uops.push_back(mkStore(UReg::ESP, 0, UReg::ET1));

    const auto frame = optimizeSimple(uops);
    // Everything folds into a single LIMM 32 feeding the store.
    ASSERT_EQ(frame.numUops(), 2u);
    EXPECT_EQ(frame.at(0).uop.op, Op::LIMM);
    EXPECT_EQ(frame.at(0).uop.imm, 32);
}

TEST(PassConstProp, RegisterOperandBecomesImmediate)
{
    std::vector<Uop> uops;
    uops.push_back(mkLimm(UReg::ET3, 100));
    uops.push_back(mkAlu(Op::ADD, UReg::ET4, UReg::EAX, UReg::ET3,
                         false));
    uops.push_back(mkStore(UReg::ESP, 0, UReg::ET4));

    const auto frame = optimizeSimple(uops);
    ASSERT_EQ(frame.numUops(), 2u);
    const FrameUop add = frame.at(0);
    EXPECT_EQ(add.uop.op, Op::ADD);
    EXPECT_TRUE(add.srcB.isNone());
    EXPECT_EQ(add.uop.imm, 100);
    EXPECT_EQ(add.srcA, Operand::liveIn(UReg::EAX));
}

TEST(PassConstProp, RemovesProvenValueAssert)
{
    // The §3.3 pattern: a constant return address flows into an
    // indirect-jump assertion, which is then proven and removed.
    std::vector<Uop> uops;
    uops.push_back(mkLimm(UReg::ET7, 0x5000));
    Uop va;
    va.op = Op::ASSERT;
    va.cc = Cond::E;
    va.valueAssert = true;
    va.srcA = UReg::ET7;
    va.imm = 0x5000;
    uops.push_back(va);
    uops.push_back(mkStore(UReg::ESP, 0, UReg::EAX));

    const auto frame = optimizeSimple(uops);
    EXPECT_EQ(frame.numUops(), 1u);
    EXPECT_TRUE(frame.at(0).uop.isStore());
}

TEST(PassReassoc, CollapsesStackPointerChains)
{
    // Three decrements then a store: the store's base flattens to the
    // live-in ESP and the dead decrements disappear.
    std::vector<Uop> uops;
    uops.push_back(mkAluI(Op::SUB, UReg::ESP, UReg::ESP, 4, false));
    uops.push_back(mkAluI(Op::SUB, UReg::ESP, UReg::ESP, 4, false));
    uops.push_back(mkAluI(Op::SUB, UReg::ESP, UReg::ESP, 4, false));
    uops.push_back(mkStore(UReg::ESP, 0, UReg::EAX));

    const auto frame = optimizeSimple(uops);
    ASSERT_EQ(frame.numUops(), 2u);
    FrameUop store, esp;
    bool found_store = false, found_esp = false;
    for (const FrameUop fu : frame) {
        if (fu.uop.isStore()) {
            store = fu;
            found_store = true;
        } else {
            esp = fu;
            found_esp = true;
        }
    }
    ASSERT_TRUE(found_store);
    ASSERT_TRUE(found_esp);
    EXPECT_EQ(store.srcA, Operand::liveIn(UReg::ESP));
    EXPECT_EQ(store.uop.imm, -12);
    // ESP live-out is a single -12 update.
    EXPECT_EQ(esp.uop.op, Op::ADD);
    EXPECT_EQ(esp.uop.imm, -12);
}

TEST(PassReassoc, RespectsObservableFlags)
{
    // The second SUB's flags feed an assert; it must not be rewritten
    // into a combined ADD.
    std::vector<Uop> uops;
    uops.push_back(mkAluI(Op::SUB, UReg::EAX, UReg::EAX, 4, true));
    uops.push_back(mkAluI(Op::SUB, UReg::EAX, UReg::EAX, 4, true));
    uops.push_back(mkAssert(Cond::NE));
    uops.push_back(mkStore(UReg::ESP, 0, UReg::EAX));

    const auto frame = optimizeSimple(uops);
    // The second SUB's flags feed the assertion, so it must keep its
    // original immediate (no chain combining into -8).  The first
    // SUB's flags are shadowed and it may legally normalize to an ADD
    // of -4, but the chain must not collapse through the flag-live op.
    unsigned flagged_subs = 0;
    for (const FrameUop fu : frame) {
        if (fu.uop.op == Op::SUB && fu.uop.writesFlags) {
            EXPECT_EQ(fu.uop.imm, 4);
            EXPECT_TRUE(fu.srcA.isProd());  // still reads the first op
            ++flagged_subs;
        }
    }
    EXPECT_EQ(flagged_subs, 1u);
}

TEST(PassCse, RemovesRedundantAlu)
{
    std::vector<Uop> uops;
    uops.push_back(mkAlu(Op::ADD, UReg::EAX, UReg::ECX, UReg::EDX,
                         false));
    uops.push_back(mkAlu(Op::ADD, UReg::EBX, UReg::ECX, UReg::EDX,
                         false));
    uops.push_back(mkStore(UReg::ESP, 0, UReg::EAX));
    uops.push_back(mkStore(UReg::ESP, 4, UReg::EBX));

    const auto frame = optimizeSimple(uops);
    unsigned adds = 0;
    for (const FrameUop fu : frame)
        adds += fu.uop.op == Op::ADD;
    EXPECT_EQ(adds, 1u);
    // Both stores read the same producer.
    EXPECT_EQ(frame.at(1).srcB, frame.at(2).srcB);
}

TEST(PassCse, RedirectsFlagConsumers)
{
    // Duplicate CMPs: the second one's assert reads the first's flags.
    std::vector<Uop> uops;
    uops.push_back(mkAluI(Op::CMP, UReg::NONE, UReg::EAX, 9));
    uops.push_back(mkAssert(Cond::NE));
    uops.push_back(mkAluI(Op::CMP, UReg::NONE, UReg::EAX, 9));
    uops.push_back(mkAssert(Cond::NE));
    uops.push_back(mkStore(UReg::ESP, 0, UReg::EAX));

    OptConfig cfg;
    cfg.assertCombine = false;      // keep CMPs visible to CSE
    const auto frame = optimizeSimple(uops, cfg);
    unsigned cmps = 0;
    for (const FrameUop fu : frame)
        cmps += fu.uop.op == Op::CMP;
    EXPECT_EQ(cmps, 1u);
}

TEST(PassCse, RemovesRedundantLoadAcrossDisjointStore)
{
    std::vector<Uop> uops;
    uops.push_back(mkLoad(UReg::EAX, UReg::ESI, 0));
    uops.push_back(mkStore(UReg::ESI, 8, UReg::EAX));   // disjoint
    uops.push_back(mkLoad(UReg::EBX, UReg::ESI, 0));    // redundant
    uops.push_back(mkStore(UReg::ESI, 4, UReg::EBX));

    const auto frame = optimizeSimple(uops);
    EXPECT_EQ(frame.outputLoads, 1u);
}

TEST(PassCse, BlockedBySameAddressStore)
{
    std::vector<Uop> uops;
    uops.push_back(mkLoad(UReg::EAX, UReg::ESI, 0));
    uops.push_back(mkStore(UReg::ESI, 0, UReg::EDI));   // same address
    uops.push_back(mkLoad(UReg::EBX, UReg::ESI, 0));    // NOT redundant
    uops.push_back(mkStore(UReg::ESI, 4, UReg::EBX));
    uops.push_back(mkStore(UReg::ESI, 8, UReg::EAX));

    OptConfig cfg;
    cfg.storeForward = false;   // isolate CSE
    const auto frame = optimizeSimple(uops, cfg);
    EXPECT_EQ(frame.outputLoads, 2u);
}

TEST(PassStoreForward, ForwardsThroughSameAddress)
{
    std::vector<Uop> uops;
    uops.push_back(mkStore(UReg::ESP, -4, UReg::EBP));
    uops.push_back(mkLoad(UReg::EAX, UReg::ESP, -4));
    uops.push_back(mkStore(UReg::ESI, 0, UReg::EAX));

    const auto frame = optimizeSimple(uops);
    EXPECT_EQ(frame.outputLoads, 0u);
    // The consumer store now reads the live-in EBP directly.
    for (const FrameUop fu : frame) {
        if (fu.uop.isStore() && fu.srcA == Operand::liveIn(UReg::ESI)) {
            EXPECT_EQ(fu.srcB, Operand::liveIn(UReg::EBP));
        }
    }
}

TEST(PassStoreForward, SpeculatesAcrossMayAliasStore)
{
    std::vector<Uop> uops;
    uops.push_back(mkStore(UReg::ESI, 0, UReg::EBP));   // store A
    uops.push_back(mkStore(UReg::ECX, 0, UReg::EDI));   // store B: alias?
    uops.push_back(mkLoad(UReg::EAX, UReg::ESI, 0));
    uops.push_back(mkStore(UReg::ESI, 16, UReg::EAX));

    // Without alias hints: no speculation, load survives.
    const auto plain = optimizeSimple(uops);
    EXPECT_EQ(plain.outputLoads, 1u);

    // With a clean profile: forwarded, store B marked unsafe.
    AllowAllHints allow;
    const auto spec = optimizeSimple(uops, {}, &allow);
    EXPECT_EQ(spec.outputLoads, 0u);
    unsigned unsafe = 0;
    for (const FrameUop fu : spec)
        unsafe += fu.unsafe;
    EXPECT_EQ(unsafe, 1u);

    // With a dirty profile: refused.
    DenyAllHints deny;
    const auto no_spec = optimizeSimple(uops, {}, &deny);
    EXPECT_EQ(no_spec.outputLoads, 1u);
}

TEST(PassStoreForward, UnsafeStoreAbortsOnRuntimeAlias)
{
    std::vector<Uop> uops;
    uops.push_back(mkStore(UReg::ESI, 0, UReg::EBP));
    uops.push_back(mkStore(UReg::ECX, 0, UReg::EDI));
    uops.push_back(mkLoad(UReg::EAX, UReg::ESI, 0));
    uops.push_back(mkStore(UReg::ESI, 16, UReg::EAX));

    AllowAllHints allow;
    const auto frame = optimizeSimple(uops, {}, &allow);
    ASSERT_EQ(frame.outputLoads, 0u);

    // Non-aliasing execution commits and forwards the right value.
    {
        ArchState st;
        st.regs[unsigned(UReg::ESI)] = 0x100;
        st.regs[unsigned(UReg::ECX)] = 0x200;
        st.regs[unsigned(UReg::EBP)] = 42;
        x86::SparseMemory mem;
        const auto res = executeFrame(frame, st, mem);
        EXPECT_TRUE(res.committed());
        EXPECT_EQ(mem.read(0x110, 4), 42u);
    }
    // Aliasing execution aborts with a rollback.
    {
        ArchState st;
        st.regs[unsigned(UReg::ESI)] = 0x100;
        st.regs[unsigned(UReg::ECX)] = 0x100;   // B aliases A
        st.regs[unsigned(UReg::EBP)] = 42;
        x86::SparseMemory mem;
        const auto res = executeFrame(frame, st, mem);
        EXPECT_EQ(res.status,
                  FrameExecResult::Status::UNSAFE_CONFLICT);
        EXPECT_EQ(mem.read(0x100, 4), 0u);      // nothing committed
    }
}

TEST(PassDce, NeverRemovesStoresOrAsserts)
{
    std::vector<Uop> uops;
    uops.push_back(mkAluI(Op::CMP, UReg::NONE, UReg::EAX, 1));
    uops.push_back(mkAssert(Cond::NE));
    uops.push_back(mkStore(UReg::ESP, 0, UReg::EBX));

    OptConfig cfg = OptConfig::allOff();
    const auto frame = optimizeSimple(uops, cfg);
    EXPECT_EQ(frame.numUops(), 3u);     // only DCE ran; nothing is dead
}

TEST(PassDce, RemovesDeadTemporaries)
{
    std::vector<Uop> uops;
    // ET values are dead at the frame boundary by definition.
    uops.push_back(mkLimm(UReg::ET0, 1));
    uops.push_back(mkAluI(Op::ADD, UReg::ET1, UReg::ET0, 2, false));
    uops.push_back(mkStore(UReg::ESP, 0, UReg::EAX));

    const auto frame = optimizeSimple(uops, OptConfig::allOff());
    EXPECT_EQ(frame.numUops(), 1u);
}

TEST(PassDce, KeepsArchLiveOuts)
{
    std::vector<Uop> uops;
    uops.push_back(mkLimm(UReg::EDI, 7));   // EDI is live-out
    uops.push_back(mkStore(UReg::ESP, 0, UReg::EAX));

    const auto frame = optimizeSimple(uops, OptConfig::allOff());
    EXPECT_EQ(frame.numUops(), 2u);
}

TEST(PassDce, KeepsFlagProducerForLiveOutFlags)
{
    std::vector<Uop> uops;
    // The CMP's flags are the frame's final flags state.
    uops.push_back(mkAluI(Op::CMP, UReg::NONE, UReg::EAX, 3));
    uops.push_back(mkStore(UReg::ESP, 0, UReg::EAX));

    const auto frame = optimizeSimple(uops, OptConfig::allOff());
    EXPECT_EQ(frame.numUops(), 2u);
}

// ---------------------------------------------------------------------
// Randomized equivalence property
// ---------------------------------------------------------------------

namespace {

/** Build a random but well-formed straight-line frame. */
std::vector<Uop>
randomFrame(Rng &rng)
{
    std::vector<Uop> uops;
    const unsigned n = 8 + unsigned(rng.below(40));
    for (unsigned i = 0; i < n; ++i) {
        const UReg dst = static_cast<UReg>(rng.below(8));
        const UReg a = static_cast<UReg>(rng.below(8));
        const UReg b = static_cast<UReg>(rng.below(8));
        switch (rng.below(7)) {
          case 0:
            uops.push_back(mkLimm(dst, int32_t(rng.below(1000))));
            break;
          case 1:
            uops.push_back(mkAlu(
                rng.chance(0.5) ? Op::ADD : Op::XOR, dst, a, b, true));
            break;
          case 2:
            uops.push_back(mkAluI(Op::ADD, dst, a,
                                  int32_t(rng.range(-64, 64)),
                                  rng.chance(0.3)));
            break;
          case 3:
            // Loads/stores confined to a small region off ESI.
            uops.push_back(
                mkLoad(dst, UReg::ESI, int32_t(rng.below(16) * 4)));
            break;
          case 4:
            uops.push_back(mkStore(UReg::ESI,
                                   int32_t(rng.below(16) * 4), a));
            break;
          case 5:
            uops.push_back(mkMov(dst, a));
            break;
          default:
            uops.push_back(mkAluI(Op::SUB, dst, a,
                                  int32_t(rng.range(-32, 32)),
                                  rng.chance(0.3)));
            break;
        }
    }
    return uops;
}

} // namespace

class OptimizerProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(OptimizerProperty, RandomFramesStayEquivalent)
{
    Rng rng(uint64_t(GetParam()) * 7919 + 3);
    const auto uops = randomFrame(rng);

    Optimizer optimizer;
    OptStats stats;
    const auto frame = optimizer.optimize(uops, {}, nullptr, stats);
    EXPECT_LE(frame.numUops(), frame.inputUops);

    ArchState in;
    for (unsigned r = 0; r < 8; ++r)
        in.regs[r] = uint32_t(rng.next());
    in.regs[unsigned(UReg::ESI)] = 0x2000;  // memory region base

    x86::SparseMemory ref_mem, opt_mem;
    for (unsigned w = 0; w < 16; ++w) {
        const uint32_t v = uint32_t(rng.next());
        ref_mem.write(0x2000 + w * 4, 4, v);
        opt_mem.write(0x2000 + w * 4, 4, v);
    }

    const ArchState ref_out = runReference(uops, in, ref_mem);
    ArchState opt_state = in;
    const auto res = executeFrame(frame, opt_state, opt_mem);
    ASSERT_TRUE(res.committed());
    expectArchEqual(opt_state, ref_out);
    for (unsigned w = 0; w < 16; ++w) {
        EXPECT_EQ(opt_mem.read(0x2000 + w * 4, 4),
                  ref_mem.read(0x2000 + w * 4, 4))
            << "memory word " << w;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimizerProperty,
                         ::testing::Range(0, 60));

TEST_P(OptimizerProperty, SoaAosRoundTripExecutesIdentically)
{
    // Differential representation check: dump the optimized SoA slab
    // to AoS Uop records, rebuild a fresh slab from them, and execute
    // both bodies from identical inputs.  Any field the slab fails to
    // round-trip — including the derived attr bitset the executor's
    // kind tests read — shows up as diverging live-outs or stores.
    Rng rng(uint64_t(GetParam()) * 104729 + 17);
    const auto uops = randomFrame(rng);

    Optimizer optimizer;
    OptStats stats;
    const auto frame = optimizer.optimize(uops, {}, nullptr, stats);

    uop::UopSlab rt;
    rt.reserve(frame.code.size());
    for (size_t i = 0; i < frame.code.size(); ++i)
        rt.push(frame.code.get(i));
    EXPECT_TRUE(rt == frame.code) << "slab -> Uop -> slab is lossy";

    OptimizedFrame rebuilt = frame;
    rebuilt.code = std::move(rt);

    ArchState in;
    for (unsigned r = 0; r < 8; ++r)
        in.regs[r] = uint32_t(rng.next());
    in.regs[unsigned(UReg::ESI)] = 0x2000;

    x86::SparseMemory soa_mem, aos_mem;
    for (unsigned w = 0; w < 16; ++w) {
        const uint32_t v = uint32_t(rng.next());
        soa_mem.write(0x2000 + w * 4, 4, v);
        aos_mem.write(0x2000 + w * 4, 4, v);
    }

    ArchState soa_state = in, aos_state = in;
    const auto soa_res = executeFrame(frame, soa_state, soa_mem);
    const auto aos_res = executeFrame(rebuilt, aos_state, aos_mem);

    ASSERT_EQ(soa_res.status, aos_res.status);
    expectArchEqual(aos_state, soa_state);
    ASSERT_EQ(soa_res.memOps.size(), aos_res.memOps.size());
    for (size_t i = 0; i < soa_res.memOps.size(); ++i) {
        EXPECT_EQ(soa_res.memOps[i].addr, aos_res.memOps[i].addr) << i;
        EXPECT_EQ(soa_res.memOps[i].size, aos_res.memOps[i].size) << i;
        EXPECT_EQ(soa_res.memOps[i].data, aos_res.memOps[i].data) << i;
    }
    for (unsigned w = 0; w < 16; ++w) {
        EXPECT_EQ(aos_mem.read(0x2000 + w * 4, 4),
                  soa_mem.read(0x2000 + w * 4, 4))
            << "memory word " << w;
    }
}

// ---------------------------------------------------------------------
// Signed-overflow hardening (bugfix sweep): immediate folding in
// constprop/reassoc wraps modulo 2^32 instead of overflowing int32_t.
// Build with -DENABLE_SANITIZERS=ON to prove it — each test drives the
// exact folding expression that used to be UB.
// ---------------------------------------------------------------------

TEST(OverflowHardening, ReassocNegatesInt32MinWithoutUb)
{
    // A flags-dead SUB is rewritten to an ADD with the negated
    // immediate; negating INT32_MIN is the classic int32 UB case, and
    // stack-adjust chains really do reach it after folding.
    std::vector<Uop> uops;
    uops.push_back(mkAluI(Op::SUB, UReg::ESP, UReg::ESP,
                          std::numeric_limits<int32_t>::min(), false));
    uops.push_back(mkAluI(Op::ADD, UReg::ESP, UReg::ESP, 16, false));
    uops.push_back(mkMov(UReg::EAX, UReg::ESP));

    Optimizer optimizer;
    OptStats stats;
    const auto frame = optimizer.optimize(uops, {}, nullptr, stats);
    EXPECT_GT(stats.reassociations, 0u);

    ArchState in;
    in.regs[unsigned(UReg::ESP)] = 0x80001000u;
    x86::SparseMemory ref_mem, opt_mem;
    const ArchState ref = runReference(uops, in, ref_mem);
    ArchState out = in;
    const auto res = executeFrame(frame, out, opt_mem);
    ASSERT_TRUE(res.committed());
    expectArchEqual(out, ref);
    EXPECT_EQ(out.regs[unsigned(UReg::ESP)], 0x1010u);
}

TEST(OverflowHardening, ReassocImmediateAccumulationWraps)
{
    // Collapsing an ADD chain sums the immediates; two INT32_MAX
    // displacements overflow int32 and must wrap to 0xfffffffe.
    std::vector<Uop> uops;
    uops.push_back(mkAluI(Op::ADD, UReg::EAX, UReg::EAX,
                          std::numeric_limits<int32_t>::max(), false));
    uops.push_back(mkAluI(Op::ADD, UReg::EAX, UReg::EAX,
                          std::numeric_limits<int32_t>::max(), false));
    uops.push_back(mkMov(UReg::EBX, UReg::EAX));

    Optimizer optimizer;
    OptStats stats;
    const auto frame = optimizer.optimize(uops, {}, nullptr, stats);
    EXPECT_GT(stats.reassociations, 0u);

    ArchState in;
    in.regs[unsigned(UReg::EAX)] = 5;
    x86::SparseMemory ref_mem, opt_mem;
    const ArchState ref = runReference(uops, in, ref_mem);
    ArchState out = in;
    const auto res = executeFrame(frame, out, opt_mem);
    ASSERT_TRUE(res.committed());
    expectArchEqual(out, ref);
    EXPECT_EQ(out.regs[unsigned(UReg::EAX)], 3u);   // 5 + 0xfffffffe
}

TEST(OverflowHardening, ConstPropAddressFoldWraps)
{
    // Folding a known-constant base into a memory displacement adds
    // two immediates whose int32 sum overflows; addresses are modular.
    std::vector<Uop> uops;
    uops.push_back(mkLimm(UReg::EBX, 0x7ffffff0));
    uops.push_back(mkStore(UReg::EBX, 0x20, UReg::EAX));
    uops.push_back(mkLoad(UReg::ECX, UReg::EBX, 0x20));

    Optimizer optimizer;
    OptStats stats;
    const auto frame = optimizer.optimize(uops, {}, nullptr, stats);
    EXPECT_GT(stats.constantsFolded, 0u);

    ArchState in;
    in.regs[unsigned(UReg::EAX)] = 0xdeadbeef;
    x86::SparseMemory ref_mem, opt_mem;
    const ArchState ref = runReference(uops, in, ref_mem);
    ArchState out = in;
    const auto res = executeFrame(frame, out, opt_mem);
    ASSERT_TRUE(res.committed());
    expectArchEqual(out, ref);
    EXPECT_EQ(out.regs[unsigned(UReg::ECX)], 0xdeadbeefu);
    EXPECT_EQ(opt_mem.read(0x80000010u, 4), ref_mem.read(0x80000010u, 4));
}

TEST_P(OptimizerProperty, ExtremeImmediateChainsStayEquivalent)
{
    // Property sweep over chains built from boundary immediates: every
    // combination the folding passes collapse must match the
    // architectural reference bit-for-bit (and, under UBSan, must not
    // trip the signed-overflow checks).
    Rng rng(uint64_t(GetParam()) * 31337 + 7);
    static constexpr int32_t extremes[] = {
        std::numeric_limits<int32_t>::min(),
        std::numeric_limits<int32_t>::min() + 1,
        std::numeric_limits<int32_t>::max(),
        -1, 0, 1, 0x40000000, -0x40000000,
    };
    auto pick = [&] { return extremes[rng.below(8)]; };

    std::vector<Uop> uops;
    for (unsigned i = 0; i < 24; ++i) {
        const UReg dst = static_cast<UReg>(rng.below(6));
        const UReg a = static_cast<UReg>(rng.below(6));
        switch (rng.below(3)) {
          case 0:
            uops.push_back(mkLimm(dst, pick()));
            break;
          case 1:
            uops.push_back(
                mkAluI(Op::ADD, dst, a, pick(), rng.chance(0.2)));
            break;
          default:
            uops.push_back(
                mkAluI(Op::SUB, dst, a, pick(), rng.chance(0.2)));
            break;
        }
    }

    Optimizer optimizer;
    OptStats stats;
    const auto frame = optimizer.optimize(uops, {}, nullptr, stats);

    ArchState in;
    for (unsigned r = 0; r < 8; ++r)
        in.regs[r] = uint32_t(rng.next());
    x86::SparseMemory ref_mem, opt_mem;
    const ArchState ref = runReference(uops, in, ref_mem);
    ArchState out = in;
    const auto res = executeFrame(frame, out, opt_mem);
    ASSERT_TRUE(res.committed());
    expectArchEqual(out, ref);
}

TEST(Datapath, PipelineDepthLimitsInFlightFrames)
{
    OptimizerPipeline pipe(3, 10);
    EXPECT_TRUE(pipe.schedule(0, 100).has_value());     // done at 1000
    EXPECT_TRUE(pipe.schedule(1, 100).has_value());
    EXPECT_TRUE(pipe.schedule(2, 100).has_value());
    EXPECT_FALSE(pipe.schedule(3, 100).has_value());    // saturated
    EXPECT_EQ(pipe.dropped(), 1u);
    EXPECT_TRUE(pipe.schedule(1001, 100).has_value());  // drained
}

TEST(Datapath, LatencyIsTenCyclesPerUop)
{
    OptimizerPipeline pipe;
    const auto done = pipe.schedule(100, 32);
    ASSERT_TRUE(done.has_value());
    EXPECT_EQ(*done, 100u + 320u);
    EXPECT_EQ(Optimizer::latencyFor(32), 320u);
}

TEST(Datapath, PrimitiveCountsAccumulate)
{
    const auto [uops, blocks] = figure2Frame();
    Optimizer optimizer;
    OptStats stats;
    const auto frame = optimizer.optimize(uops, blocks, nullptr, stats);
    EXPECT_GT(frame.prims.parentLookups, 0u);
    EXPECT_GT(frame.prims.invalidates, 0u);
    PrimitiveLatency lat;
    EXPECT_GT(lat.cyclesFor(frame.prims), frame.prims.total() / 2);
}

// ---------------------------------------------------------------------
// Inter-block scope (the fourth column of Figure 2)
// ---------------------------------------------------------------------

TEST(Figure2, InterBlockScopeMatchesPaperColumn)
{
    const auto [uops, blocks] = figure2Frame();
    OptConfig cfg;
    cfg.scope = Scope::INTER_BLOCK;
    Optimizer optimizer(cfg);
    OptStats stats;
    const auto frame = optimizer.optimize(uops, blocks, nullptr, stats);

    // Paper, inter-block column: 12 micro-ops survive.  Store
    // forwarding removes the EBP restore (14) — every exit then binds
    // the live-in EBP — but must keep the EBX restore (12), because
    // the intermediate exit after the assertion needs the loaded
    // parameter value while the fall-through needs the saved one.
    EXPECT_EQ(frame.numUops(), 12u);
    EXPECT_EQ(frame.outputLoads, 4u);   // one of the five removed
}

TEST(Figure2, ScopeOrderingOnUopCounts)
{
    const auto [uops, blocks] = figure2Frame();
    OptStats stats;
    auto count = [&](Scope scope) {
        OptConfig cfg;
        cfg.scope = scope;
        return Optimizer(cfg)
            .optimize(uops, blocks, nullptr, stats)
            .numUops();
    };
    const unsigned block = count(Scope::BLOCK);
    const unsigned inter = count(Scope::INTER_BLOCK);
    const unsigned frame = count(Scope::FRAME);
    // 13 > 12 > 10: each widening of scope removes more.
    EXPECT_GT(block, inter);
    EXPECT_GT(inter, frame);
    EXPECT_EQ(frame, 10u);
}

TEST(InterBlock, FramesStayEquivalentOnWorkloads)
{
    // Inter-block-scope frames must still transform state correctly.
    Rng rng(4242);
    for (int trial = 0; trial < 40; ++trial) {
        const auto uops = randomFrame(rng);
        // Mark halfway as a second block.
        std::vector<uint16_t> blocks(uops.size(), 0);
        for (size_t i = uops.size() / 2; i < uops.size(); ++i)
            blocks[i] = 1;

        OptConfig cfg;
        cfg.scope = Scope::INTER_BLOCK;
        Optimizer optimizer(cfg);
        OptStats stats;
        const auto frame =
            optimizer.optimize(uops, blocks, nullptr, stats);

        ArchState in;
        for (unsigned r = 0; r < 8; ++r)
            in.regs[r] = uint32_t(rng.next());
        in.regs[unsigned(UReg::ESI)] = 0x2000;

        x86::SparseMemory ref_mem, opt_mem;
        for (unsigned w = 0; w < 16; ++w) {
            const uint32_t v = uint32_t(rng.next());
            ref_mem.write(0x2000 + w * 4, 4, v);
            opt_mem.write(0x2000 + w * 4, 4, v);
        }
        const ArchState ref_out = runReference(uops, in, ref_mem);
        ArchState opt_state = in;
        const auto res = executeFrame(frame, opt_state, opt_mem);
        ASSERT_TRUE(res.committed());
        expectArchEqual(opt_state, ref_out);
        for (unsigned w = 0; w < 16; ++w) {
            ASSERT_EQ(opt_mem.read(0x2000 + w * 4, 4),
                      ref_mem.read(0x2000 + w * 4, 4));
        }
    }
}

// ---------------------------------------------------------------------
// Pass-mask property sweep: any subset of optimizations preserves
// semantics on random frames.
// ---------------------------------------------------------------------

class PassMaskProperty
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(PassMaskProperty, AnyOptimizationSubsetStaysEquivalent)
{
    const auto [mask, seed] = GetParam();
    OptConfig cfg;
    cfg.nopRemoval = mask & 1;
    cfg.assertCombine = mask & 2;
    cfg.constProp = mask & 4;
    cfg.reassoc = mask & 8;
    cfg.cse = mask & 16;
    cfg.storeForward = mask & 32;

    Rng rng(uint64_t(seed) * 1013904223 + mask);
    const auto uops = randomFrame(rng);

    Optimizer optimizer(cfg);
    OptStats stats;
    const auto frame = optimizer.optimize(uops, {}, nullptr, stats);

    ArchState in;
    for (unsigned r = 0; r < 8; ++r)
        in.regs[r] = uint32_t(rng.next());
    in.regs[unsigned(UReg::ESI)] = 0x2000;

    x86::SparseMemory ref_mem, opt_mem;
    for (unsigned w = 0; w < 16; ++w) {
        const uint32_t v = uint32_t(rng.next());
        ref_mem.write(0x2000 + w * 4, 4, v);
        opt_mem.write(0x2000 + w * 4, 4, v);
    }
    const ArchState ref_out = runReference(uops, in, ref_mem);
    ArchState opt_state = in;
    const auto res = executeFrame(frame, opt_state, opt_mem);
    ASSERT_TRUE(res.committed());
    expectArchEqual(opt_state, ref_out);
    for (unsigned w = 0; w < 16; ++w) {
        ASSERT_EQ(opt_mem.read(0x2000 + w * 4, 4),
                  ref_mem.read(0x2000 + w * 4, 4));
    }
}

INSTANTIATE_TEST_SUITE_P(
    Masks, PassMaskProperty,
    ::testing::Combine(::testing::Values(0, 1, 2, 4, 8, 16, 32, 63,
                                         21, 42),
                       ::testing::Range(0, 6)));

// ---------------------------------------------------------------------
// Speculative memory: frames with unknown-base stores either commit
// with reference semantics or detect the conflict and roll back.
// ---------------------------------------------------------------------

class SpeculativeMemProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(SpeculativeMemProperty, ConflictOrCorrectness)
{
    Rng rng(uint64_t(GetParam()) * 2654435761u + 17);

    // store [ESI+0]; store [ECX+0] (unknown base); load [ESI+0];
    // plus random filler.
    std::vector<Uop> uops;
    uops.push_back(mkStore(UReg::ESI, 0, UReg::EBP));
    uops.push_back(mkStore(UReg::ECX, 0, UReg::EDI));
    uops.push_back(mkLoad(UReg::EAX, UReg::ESI, 0));
    uops.push_back(mkStore(UReg::ESI, 16, UReg::EAX));
    const auto filler = randomFrame(rng);
    uops.insert(uops.end(), filler.begin(), filler.end());

    AllowAllHints allow;
    Optimizer optimizer;
    OptStats stats;
    const auto frame = optimizer.optimize(uops, {}, &allow, stats);

    // Random runtime pointers: ECX aliases ESI in ~1/4 of trials.
    ArchState in;
    for (unsigned r = 0; r < 8; ++r)
        in.regs[r] = uint32_t(rng.next());
    in.regs[unsigned(UReg::ESI)] = 0x2000;
    in.regs[unsigned(UReg::ECX)] =
        rng.chance(0.25) ? 0x2000 : 0x3000 + uint32_t(rng.below(16)) * 4;

    x86::SparseMemory ref_mem, opt_mem;
    for (unsigned w = 0; w < 16; ++w) {
        const uint32_t v = uint32_t(rng.next());
        ref_mem.write(0x2000 + w * 4, 4, v);
        opt_mem.write(0x2000 + w * 4, 4, v);
    }

    ArchState opt_state = in;
    const auto res = executeFrame(frame, opt_state, opt_mem);
    if (!res.committed()) {
        // Rollback must leave state untouched.
        EXPECT_EQ(res.status,
                  FrameExecResult::Status::UNSAFE_CONFLICT);
        expectArchEqual(opt_state, in);
        for (unsigned w = 0; w < 16; ++w) {
            EXPECT_EQ(opt_mem.read(0x2000 + w * 4, 4),
                      ref_mem.read(0x2000 + w * 4, 4));
        }
        return;
    }
    // Committed: must match the unoptimized semantics exactly.
    const ArchState ref_out = runReference(uops, in, ref_mem);
    expectArchEqual(opt_state, ref_out);
    for (unsigned w = 0; w < 16; ++w) {
        EXPECT_EQ(opt_mem.read(0x2000 + w * 4, 4),
                  ref_mem.read(0x2000 + w * 4, 4));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpeculativeMemProperty,
                         ::testing::Range(0, 40));

// ---------------------------------------------------------------------
// Remapper edge cases
// ---------------------------------------------------------------------

TEST(Remapper, SlotMWritesMAndSourcesBecomeParentIndices)
{
    // A dependence chain: every uop reads the previous one's result.
    std::vector<Uop> uops;
    uops.push_back(mkLimm(UReg::EAX, 5));
    for (unsigned i = 0; i < 6; ++i)
        uops.push_back(mkAluI(Op::ADD, UReg::EAX, UReg::EAX, 1));

    const OptBuffer buf = Remapper().remap(uops);
    ASSERT_EQ(buf.size(), 7u);
    for (size_t i = 1; i < buf.size(); ++i) {
        const Operand &src = buf.at(i).srcA;
        ASSERT_TRUE(src.isProd()) << "slot " << i;
        EXPECT_EQ(src.idx, i - 1) << "slot " << i;
    }
    // The final exit binds EAX to the last producer slot.
    const Operand &out = buf.finalExit().regs[unsigned(UReg::EAX)];
    ASSERT_TRUE(out.isProd());
    EXPECT_EQ(out.idx, buf.size() - 1);
    // Untouched registers stay bound to their live-in values.
    EXPECT_TRUE(buf.finalExit().regs[unsigned(UReg::EBX)].isLiveIn());
}

TEST(Remapper, HandlesTheConstructorMaximumFrame)
{
    // The constructor caps frames at 256 micro-ops; remapping a
    // maximum frame must preserve every slot and the write-after-write
    // renaming (all 256 write EAX, only the last one reaches the exit).
    const core::ConstructorConfig ctor_cfg;
    const unsigned n = ctor_cfg.maxUops;
    ASSERT_EQ(n, 256u);
    std::vector<Uop> uops;
    for (unsigned i = 0; i < n; ++i)
        uops.push_back(mkLimm(UReg::EAX, int32_t(i)));

    const OptBuffer buf = Remapper().remap(uops);
    ASSERT_EQ(buf.size(), n);
    const Operand &out = buf.finalExit().regs[unsigned(UReg::EAX)];
    ASSERT_TRUE(out.isProd());
    EXPECT_EQ(out.idx, n - 1);

    // And the full optimizer still produces an executable body: DCE
    // collapses the dead rewrites down to the surviving tail.
    OptStats stats;
    const auto frame = Optimizer().optimize(uops, {}, nullptr, stats);
    EXPECT_LT(frame.numUops(), n);
    ArchState st;
    x86::SparseMemory mem;
    ASSERT_TRUE(executeFrame(frame, st, mem).committed());
    EXPECT_EQ(st.regs[unsigned(UReg::EAX)], n - 1);
}

TEST(Remapper, PerBlockExitsSnapshotEveryBoundary)
{
    std::vector<Uop> uops;
    uops.push_back(mkLimm(UReg::EAX, 1));
    uops.push_back(mkLimm(UReg::EBX, 2));
    uops.push_back(mkLimm(UReg::EAX, 3));
    uops.push_back(mkLimm(UReg::ECX, 4));
    const std::vector<uint16_t> blocks{0, 0, 1, 1};

    const OptBuffer buf = Remapper().remap(uops, blocks, true);
    ASSERT_EQ(buf.exits().size(), 2u);
    // Block 0's exit sees only the first two writes...
    const ExitBinding &e0 = buf.exits()[0];
    EXPECT_EQ(e0.block, 0u);
    ASSERT_TRUE(e0.regs[unsigned(UReg::EAX)].isProd());
    EXPECT_EQ(e0.regs[unsigned(UReg::EAX)].idx, 0u);
    EXPECT_TRUE(e0.regs[unsigned(UReg::ECX)].isLiveIn());
    // ...while the frame exit sees the block-1 overwrites.
    const ExitBinding &e1 = buf.finalExit();
    EXPECT_EQ(e1.block, 1u);
    ASSERT_TRUE(e1.regs[unsigned(UReg::EAX)].isProd());
    EXPECT_EQ(e1.regs[unsigned(UReg::EAX)].idx, 2u);
    EXPECT_EQ(e1.regs[unsigned(UReg::ECX)].idx, 3u);

    // Without per-block exits only the frame boundary is recorded.
    EXPECT_EQ(Remapper().remap(uops, blocks, false).exits().size(), 1u);
}

TEST(RemapperDeathTest, BlockAnnotationLengthMismatchPanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    std::vector<Uop> uops;
    uops.push_back(mkLimm(UReg::EAX, 1));
    uops.push_back(mkLimm(UReg::EBX, 2));
    const std::vector<uint16_t> short_blocks{0};
    EXPECT_DEATH(Remapper().remap(uops, short_blocks),
                 "block annotation length mismatch");
}

// ---------------------------------------------------------------------
// Per-pass properties: each optimization alone, on seeded random
// frames, reaches a fixed point within the iteration bound (re-running
// it changes nothing) and preserves the architectural live-outs under
// FrameExec.
// ---------------------------------------------------------------------

namespace {

/** Canonical text form of a body, for structural comparison. */
std::string
bodySignature(const OptimizedFrame &frame)
{
    std::string sig;
    auto operand = [&sig](const Operand &op) {
        switch (op.kind) {
          case Operand::Kind::NONE:
            sig += '-';
            break;
          case Operand::Kind::LIVE_IN:
            sig += 'L';
            sig += std::to_string(unsigned(op.reg));
            break;
          case Operand::Kind::PROD:
            sig += 'P';
            sig += std::to_string(op.idx);
            break;
        }
        if (op.flagsView)
            sig += 'f';
        sig += ' ';
    };
    for (const FrameUop fu : frame) {
        sig += opName(fu.uop.op);
        sig += ' ';
        sig += std::to_string(fu.uop.imm);
        sig += ' ';
        operand(fu.srcA);
        operand(fu.srcB);
        operand(fu.srcC);
        operand(fu.flagsSrc);
        sig += fu.unsafe ? "U" : "";
        sig += '\n';
    }
    sig += "exit ";
    for (unsigned r = 0; r < NUM_UREGS; ++r)
        operand(frame.exit.regs[r]);
    operand(frame.exit.flags);
    return sig;
}

} // namespace

class SinglePassProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(SinglePassProperty, IdempotentAndEquivalentOn200RandomFrames)
{
    const unsigned bit = unsigned(GetParam());
    const OptConfig cfg =
        OptConfig::fromPassMask(uint8_t(1u << bit));
    OptConfig extra = cfg;
    extra.maxIterations = cfg.maxIterations + 2;
    AllowAllHints allow;

    for (uint64_t seed = 0; seed < 200; ++seed) {
        Rng rng(seed * 6364136223846793005ULL + bit);
        const auto uops = randomFrame(rng);

        OptStats stats;
        const auto frame =
            Optimizer(cfg).optimize(uops, {}, &allow, stats);
        const auto again =
            Optimizer(extra).optimize(uops, {}, &allow, stats);
        // Fixed point within the iteration bound: extra pipeline
        // iterations must not change the body.
        ASSERT_EQ(bodySignature(frame), bodySignature(again))
            << OptConfig::passBitName(bit) << " seed " << seed;

        ArchState in;
        for (unsigned r = 0; r < 8; ++r)
            in.regs[r] = uint32_t(rng.next());
        in.regs[unsigned(UReg::ESI)] = 0x2000;

        x86::SparseMemory ref_mem, opt_mem;
        for (unsigned w = 0; w < 16; ++w) {
            const uint32_t v = uint32_t(rng.next());
            ref_mem.write(0x2000 + w * 4, 4, v);
            opt_mem.write(0x2000 + w * 4, 4, v);
        }
        const ArchState ref_out = runReference(uops, in, ref_mem);
        ArchState opt_state = in;
        const auto res = executeFrame(frame, opt_state, opt_mem);
        ASSERT_TRUE(res.committed())
            << OptConfig::passBitName(bit) << " seed " << seed;
        expectArchEqual(opt_state, ref_out);
        for (unsigned w = 0; w < 16; ++w) {
            ASSERT_EQ(opt_mem.read(0x2000 + w * 4, 4),
                      ref_mem.read(0x2000 + w * 4, 4))
                << OptConfig::passBitName(bit) << " seed " << seed
                << " word " << w;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Passes, SinglePassProperty,
    ::testing::Range(0, int(OptConfig::NUM_PASS_BITS)),
    [](const ::testing::TestParamInfo<int> &param_info) {
        return std::string(
            OptConfig::passBitName(unsigned(param_info.param)));
    });

// ---------------------------------------------------------------------
// Tier idempotence: the background re-optimizer feeds *cheap-optimized*
// bodies (NOP removal + DCE survivors) back through the full pipeline.
// Every pass must be safe on that pre-thinned input, reach a fixed
// point, and produce a frame architecturally equivalent to the raw
// micro-op stream the cheap body came from.
// ---------------------------------------------------------------------

namespace {

/** The re-opt snapshot: a cheap body's surviving uop/block stream. */
std::pair<std::vector<Uop>, std::vector<uint16_t>>
cheapSurvivors(const std::vector<Uop> &raw)
{
    OptStats stats;
    const auto cheap =
        Optimizer(OptConfig::cheap()).optimize(raw, {}, nullptr, stats);
    std::vector<Uop> uops;
    std::vector<uint16_t> blocks;
    for (const FrameUop fu : cheap) {
        uops.push_back(fu.uop);
        blocks.push_back(fu.block);
    }
    return {std::move(uops), std::move(blocks)};
}

} // namespace

class TierPassProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(TierPassProperty, EveryPassSafeOnCheapOptimizedFrames)
{
    const unsigned bit = unsigned(GetParam());
    const OptConfig cfg = OptConfig::fromPassMask(uint8_t(1u << bit));
    OptConfig extra = cfg;
    extra.maxIterations = cfg.maxIterations + 2;
    AllowAllHints allow;

    for (uint64_t seed = 0; seed < 200; ++seed) {
        Rng rng(seed * 0x9E3779B97F4A7C15ULL + bit);
        const auto raw = randomFrame(rng);
        const auto [uops, blocks] = cheapSurvivors(raw);

        OptStats stats;
        const auto frame =
            Optimizer(cfg).optimize(uops, blocks, &allow, stats);
        const auto again =
            Optimizer(extra).optimize(uops, blocks, &allow, stats);
        // Fixed point on the pre-thinned input, too.
        ASSERT_EQ(bodySignature(frame), bodySignature(again))
            << OptConfig::passBitName(bit) << " seed " << seed;

        ArchState in;
        for (unsigned r = 0; r < 8; ++r)
            in.regs[r] = uint32_t(rng.next());
        in.regs[unsigned(UReg::ESI)] = 0x2000;

        x86::SparseMemory ref_mem, opt_mem;
        for (unsigned w = 0; w < 16; ++w) {
            const uint32_t v = uint32_t(rng.next());
            ref_mem.write(0x2000 + w * 4, 4, v);
            opt_mem.write(0x2000 + w * 4, 4, v);
        }
        // The reference runs the RAW stream: passing through the cheap
        // tier and then one more pass must not change semantics.
        const ArchState ref_out = runReference(raw, in, ref_mem);
        ArchState opt_state = in;
        const auto res = executeFrame(frame, opt_state, opt_mem);
        ASSERT_TRUE(res.committed())
            << OptConfig::passBitName(bit) << " seed " << seed;
        expectArchEqual(opt_state, ref_out);
        for (unsigned w = 0; w < 16; ++w) {
            ASSERT_EQ(opt_mem.read(0x2000 + w * 4, 4),
                      ref_mem.read(0x2000 + w * 4, 4))
                << OptConfig::passBitName(bit) << " seed " << seed
                << " word " << w;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Passes, TierPassProperty,
    ::testing::Range(0, int(OptConfig::NUM_PASS_BITS)),
    [](const ::testing::TestParamInfo<int> &param_info) {
        return std::string(
            OptConfig::passBitName(unsigned(param_info.param)));
    });

TEST(TierEquivalence, CheapThenFullMatchesFullOnRawFrames)
{
    // cheap -> full and direct full may diverge *structurally* (CSE in
    // the raw pipeline can bind to a slot cheap DCE already deleted),
    // but both must transform architectural state identically.
    AllowAllHints allow;
    for (uint64_t seed = 0; seed < 200; ++seed) {
        Rng rng(seed * 2654435761ULL + 99);
        const auto raw = randomFrame(rng);
        const auto [uops, blocks] = cheapSurvivors(raw);

        OptStats stats;
        const auto tiered =
            Optimizer().optimize(uops, blocks, &allow, stats);
        const auto direct = Optimizer().optimize(raw, {}, &allow, stats);

        ArchState in;
        for (unsigned r = 0; r < 8; ++r)
            in.regs[r] = uint32_t(rng.next());
        in.regs[unsigned(UReg::ESI)] = 0x2000;

        x86::SparseMemory ref_mem, tier_mem, direct_mem;
        for (unsigned w = 0; w < 16; ++w) {
            const uint32_t v = uint32_t(rng.next());
            ref_mem.write(0x2000 + w * 4, 4, v);
            tier_mem.write(0x2000 + w * 4, 4, v);
            direct_mem.write(0x2000 + w * 4, 4, v);
        }
        const ArchState ref_out = runReference(raw, in, ref_mem);

        ArchState tier_state = in;
        ASSERT_TRUE(
            executeFrame(tiered, tier_state, tier_mem).committed())
            << "seed " << seed;
        expectArchEqual(tier_state, ref_out);

        ArchState direct_state = in;
        ASSERT_TRUE(
            executeFrame(direct, direct_state, direct_mem).committed())
            << "seed " << seed;
        expectArchEqual(direct_state, ref_out);

        for (unsigned w = 0; w < 16; ++w) {
            ASSERT_EQ(tier_mem.read(0x2000 + w * 4, 4),
                      ref_mem.read(0x2000 + w * 4, 4))
                << "seed " << seed << " word " << w;
            ASSERT_EQ(direct_mem.read(0x2000 + w * 4, 4),
                      ref_mem.read(0x2000 + w * 4, 4))
                << "seed " << seed << " word " << w;
        }
    }
}
