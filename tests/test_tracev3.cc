/**
 * @file
 * Trace container v3 test battery.
 *
 * Three pillars, matching the hardening contract in DESIGN.md:
 *
 *  - Corruption matrix: for every structural field of the container
 *    (header, chunk headers, payload, index, footer) a paired
 *    accept/reject check — the pristine file reads fully, the file
 *    with that one field damaged yields a *typed* TraceError plus the
 *    valid prefix, and restoring the field restores the full stream.
 *    Never a crash, never silently wrong data.
 *
 *  - Round-trip properties: a v2 container converted to v3 delivers
 *    the identical record stream for all 14 workloads, across codecs
 *    (raw/zlib) and read paths (mmap/buffered).
 *
 *  - Seek/resume: seekToRecord() agrees with sequential replay at
 *    chunk boundaries, mid-chunk, EOF and past-EOF, including after a
 *    transient injected read fault absorbed by the retry path.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "fault/faultinjector.hh"
#include "trace/chunk.hh"
#include "trace/corpus.hh"
#include "trace/tracefile.hh"
#include "trace/tracer.hh"
#include "trace/tracev3.hh"
#include "trace/workload.hh"
#include "util/rng.hh"

using namespace replay;
using namespace replay::trace;
using fault::FaultInjector;
using Kind = TraceError::Kind;

namespace {

std::vector<uint8_t>
slurp(const std::string &path)
{
    std::vector<uint8_t> bytes;
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return bytes;
    uint8_t buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        bytes.insert(bytes.end(), buf, buf + n);
    std::fclose(f);
    return bytes;
}

void
spit(const std::string &path, const std::vector<uint8_t> &bytes)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr) << path;
    if (!bytes.empty()) {
        ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f),
                  bytes.size());
    }
    std::fclose(f);
}

/** Rewrite one header field and re-seal the header checksum, so the
 *  *field* check trips instead of the checksum guard in front of it. */
void
patchHeaderField(std::vector<uint8_t> &bytes, size_t off, uint64_t value,
                 unsigned width)
{
    if (width == 8)
        wire::store64(bytes.data() + off, value);
    else
        wire::store32(bytes.data() + off, uint32_t(value));
    wire::store32(bytes.data() + v3::HDR_OFF_CHECKSUM,
                  wire::fnv1a32(bytes.data(), v3::HDR_OFF_CHECKSUM));
}

struct ReadResult
{
    uint64_t records = 0;
    TraceError err;
    uint64_t ioRetries = 0;
    std::vector<uint32_t> pcs;
};

ReadResult
readV3(const std::string &path, V3SourceOptions opts = {})
{
    clearTraceQuarantine();
    ReadResult r;
    TraceV3Source src(path, opts);
    while (!src.done()) {
        r.pcs.push_back(src.peek()->pc);
        src.advance();
    }
    r.records = src.consumed();
    r.err = src.error();
    r.ioRetries = src.ioRetries();
    return r;
}

/** Every field of every record must agree between the two sources. */
void
expectIdenticalStreams(TraceSource &got_src, TraceSource &want_src)
{
    uint64_t n = 0;
    while (!want_src.done()) {
        ASSERT_FALSE(got_src.done()) << "stream ended early at " << n;
        const TraceRecord *got = got_src.peek();
        const TraceRecord *want = want_src.peek();
        ASSERT_NE(got, nullptr);
        EXPECT_EQ(got->pc, want->pc) << "record " << n;
        EXPECT_EQ(got->nextPc, want->nextPc) << "record " << n;
        EXPECT_EQ(got->length, want->length) << "record " << n;
        EXPECT_EQ(got->taken, want->taken) << "record " << n;
        EXPECT_EQ(got->flagsAfter, want->flagsAfter) << "record " << n;
        EXPECT_TRUE(got->inst == want->inst) << "record " << n;
        ASSERT_EQ(got->numRegWrites, want->numRegWrites) << "record " << n;
        for (unsigned i = 0; i < want->numRegWrites; ++i) {
            EXPECT_EQ(got->regWrites[i].reg, want->regWrites[i].reg);
            EXPECT_EQ(got->regWrites[i].value, want->regWrites[i].value);
        }
        ASSERT_EQ(got->numMemOps, want->numMemOps) << "record " << n;
        for (unsigned i = 0; i < want->numMemOps; ++i) {
            EXPECT_EQ(got->memOps[i].isStore, want->memOps[i].isStore);
            EXPECT_EQ(got->memOps[i].addr, want->memOps[i].addr);
            EXPECT_EQ(got->memOps[i].size, want->memOps[i].size);
            EXPECT_EQ(got->memOps[i].data, want->memOps[i].data);
        }
        got_src.advance();
        want_src.advance();
        ++n;
    }
    EXPECT_TRUE(got_src.done()) << "stream has extra records past " << n;
}

/** Copy a v2 container's records into a fresh v3 container. */
void
convertV2ToV3(const std::string &v2_path, const std::string &v3_path,
              V3Options opts = {})
{
    FileTraceSource in(v2_path);
    ASSERT_TRUE(in.ok()) << in.error().describe();
    TraceV3Writer out(v3_path, opts);
    while (!in.done()) {
        out.write(*in.peek());
        in.advance();
    }
    ASSERT_TRUE(in.ok()) << in.error().describe();
    const TraceError err = out.close();
    ASSERT_TRUE(err.ok()) << err.describe();
}

bool
mmapExpected()
{
    return std::getenv("REPLAY_TRACEV3_NO_MMAP") == nullptr;
}

} // namespace

// ---------------------------------------------------------------------
// Corruption matrix
// ---------------------------------------------------------------------

namespace {

constexpr uint64_t kNoOffsetCheck = ~uint64_t(0);
constexpr int64_t kNoChunkCheck = -2;

class TraceV3Corruption : public ::testing::Test
{
  protected:
    static constexpr uint64_t RECORDS = 2600;   // 1024 + 1024 + 552

    static void
    SetUpTestSuite()
    {
        path_ = new std::string(::testing::TempDir() + "matrix.rpl3");
        const Workload &w = findWorkload("gzip");
        V3Options opts;
        opts.chunkRecords = 1024;
        opts.codec = V3Codec::RAW;  // deterministic chunk geometry
        TraceV3Writer::dumpProgram(w.buildProgram(0), RECORDS, *path_,
                                   opts);
        pristine_ = new std::vector<uint8_t>(slurp(*path_));
        info_ = new V3Info(inspectV3(*path_));
        ASSERT_TRUE(info_->ok()) << info_->error.describe();
        ASSERT_EQ(info_->chunks.size(), 3u);
        ref_ = new ReadResult(readV3(*path_));
        ASSERT_TRUE(ref_->err.ok()) << ref_->err.describe();
        ASSERT_EQ(ref_->records, RECORDS);
    }

    static void
    TearDownTestSuite()
    {
        delete path_;
        delete pristine_;
        delete info_;
        delete ref_;
    }

    void
    SetUp() override
    {
        spit(*path_, *pristine_);
        clearTraceQuarantine();
    }

    /** The damaged file must yield a typed error and the exact valid
     *  prefix — and corruption must never quarantine the path. */
    void
    expectReject(Kind kind, uint64_t prefix,
                 uint64_t offset = kNoOffsetCheck,
                 int64_t chunk = kNoChunkCheck)
    {
        const ReadResult r = readV3(*path_);
        EXPECT_EQ(r.err.kind, kind)
            << "got " << traceErrorKindName(r.err.kind) << ": "
            << r.err.describe();
        EXPECT_EQ(r.records, prefix);
        ASSERT_LE(r.pcs.size(), ref_->pcs.size());
        EXPECT_TRUE(std::equal(r.pcs.begin(), r.pcs.end(),
                               ref_->pcs.begin()))
            << "delivered prefix diverges from the pristine stream";
        EXPECT_EQ(r.err.path, *path_);
        if (offset != kNoOffsetCheck) {
            EXPECT_EQ(r.err.byteOffset, offset);
        }
        if (chunk != kNoChunkCheck) {
            EXPECT_EQ(r.err.chunkIndex, chunk);
        }
        EXPECT_FALSE(traceQuarantined(*path_))
            << "corruption must not quarantine (only persistent "
               "read errors do)";
    }

    /** The restored file must deliver the full pristine stream. */
    void
    expectPristine()
    {
        const ReadResult r = readV3(*path_);
        EXPECT_TRUE(r.err.ok()) << r.err.describe();
        EXPECT_EQ(r.records, RECORDS);
        EXPECT_EQ(r.pcs, ref_->pcs);
    }

    static std::string *path_;
    static std::vector<uint8_t> *pristine_;
    static V3Info *info_;
    static ReadResult *ref_;
};

std::string *TraceV3Corruption::path_ = nullptr;
std::vector<uint8_t> *TraceV3Corruption::pristine_ = nullptr;
V3Info *TraceV3Corruption::info_ = nullptr;
ReadResult *TraceV3Corruption::ref_ = nullptr;

} // namespace

TEST_F(TraceV3Corruption, HeaderFieldFlipsAreTypedAndPaired)
{
    struct Row
    {
        const char *field;
        uint64_t offset;
        Kind kind;
        uint64_t errOffset;
    };
    // Fields behind the header checksum surface as BAD_CHECKSUM on a
    // raw bit-flip (the guard fires before the field is interpreted);
    // the fields in front of it get their own kinds.
    const Row rows[] = {
        {"magic", v3::HDR_OFF_MAGIC, Kind::BAD_MAGIC, v3::HDR_OFF_MAGIC},
        {"version", v3::HDR_OFF_VERSION, Kind::BAD_VERSION,
         v3::HDR_OFF_VERSION},
        {"recordBytes", v3::HDR_OFF_RECORD_BYTES, Kind::BAD_CHECKSUM,
         v3::HDR_OFF_CHECKSUM},
        {"recordCount", v3::HDR_OFF_RECORD_COUNT, Kind::BAD_CHECKSUM,
         v3::HDR_OFF_CHECKSUM},
        {"codec", v3::HDR_OFF_CODEC, Kind::BAD_CHECKSUM,
         v3::HDR_OFF_CHECKSUM},
        {"chunkRecords", v3::HDR_OFF_CHUNK_RECORDS, Kind::BAD_CHECKSUM,
         v3::HDR_OFF_CHECKSUM},
        {"indexOffset", v3::HDR_OFF_INDEX_OFFSET, Kind::BAD_CHECKSUM,
         v3::HDR_OFF_CHECKSUM},
        {"headerChecksum", v3::HDR_OFF_CHECKSUM, Kind::BAD_CHECKSUM,
         v3::HDR_OFF_CHECKSUM},
    };
    for (const Row &row : rows) {
        SCOPED_TRACE(row.field);
        ASSERT_TRUE(FaultInjector::flipByteAt(*path_, row.offset));
        expectReject(row.kind, 0, row.errOffset);
        // flipByteAt is self-inverse: the un-flip restores the stream.
        ASSERT_TRUE(FaultInjector::flipByteAt(*path_, row.offset));
        expectPristine();
    }
}

TEST_F(TraceV3Corruption, ResealedHeaderFieldsHitTheirTypedChecks)
{
    struct Row
    {
        const char *field;
        size_t offset;
        uint64_t value;
        unsigned width;
        Kind kind;
        uint64_t errOffset;
    };
    const Row rows[] = {
        // Wrong record size with a *valid* checksum: version skew.
        {"recordBytes", v3::HDR_OFF_RECORD_BYTES, 76, 4,
         Kind::BAD_RECORD_SIZE, v3::HDR_OFF_RECORD_BYTES},
        // Unknown codec id.
        {"codec", v3::HDR_OFF_CODEC, 7, 4, Kind::BAD_CODEC,
         v3::HDR_OFF_CODEC},
        // Stale index: header record count no longer matches what the
        // index tiles (e.g. the trace was re-recorded longer but the
        // old index/footer survived).
        {"recordCount+", v3::HDR_OFF_RECORD_COUNT, RECORDS + 512, 8,
         Kind::BAD_INDEX, info_->indexOffset},
        {"recordCount-", v3::HDR_OFF_RECORD_COUNT, RECORDS - 100, 8,
         Kind::BAD_INDEX, info_->indexOffset},
        // Header and footer disagreeing on where the index lives.
        {"indexOffset", v3::HDR_OFF_INDEX_OFFSET,
         info_->indexOffset + v3::INDEX_ENTRY_BYTES, 8, Kind::BAD_INDEX,
         pristine_->size() - v3::FOOTER_BYTES},
    };
    for (const Row &row : rows) {
        SCOPED_TRACE(row.field);
        std::vector<uint8_t> bytes = *pristine_;
        patchHeaderField(bytes, row.offset, row.value, row.width);
        spit(*path_, bytes);
        expectReject(row.kind, 0, row.errOffset);
        spit(*path_, *pristine_);
        expectPristine();
    }
}

TEST_F(TraceV3Corruption, ChunkHeaderFieldFlipsRejectWithValidPrefix)
{
    // Damage chunk 1 of 3: the reader must deliver chunk 0's 1024
    // records, then stop with a typed, chunk-scoped error.
    const uint64_t c1 = info_->chunks[1].offset;
    struct Row
    {
        const char *field;
        uint64_t offset;
        Kind kind;
    };
    const Row rows[] = {
        {"chunkMagic", c1 + v3::CHK_OFF_MAGIC, Kind::BAD_CHUNK},
        {"payloadBytes", c1 + v3::CHK_OFF_PAYLOAD_BYTES, Kind::BAD_CHUNK},
        {"rawBytes", c1 + v3::CHK_OFF_RAW_BYTES, Kind::BAD_CHUNK},
        {"records", c1 + v3::CHK_OFF_RECORDS, Kind::BAD_CHUNK},
        {"firstRecord", c1 + v3::CHK_OFF_FIRST_RECORD, Kind::BAD_CHUNK},
        {"chunkChecksum", c1 + v3::CHK_OFF_CHECKSUM, Kind::BAD_CHUNK},
    };
    for (const Row &row : rows) {
        SCOPED_TRACE(row.field);
        ASSERT_TRUE(FaultInjector::flipByteAt(*path_, row.offset));
        expectReject(row.kind, 1024, c1, 1);
        ASSERT_TRUE(FaultInjector::flipByteAt(*path_, row.offset));
        expectPristine();
    }
}

TEST_F(TraceV3Corruption, PayloadBitFlipFailsTheChunkChecksum)
{
    const uint64_t c1 = info_->chunks[1].offset;
    const uint64_t payload = c1 + v3::CHUNK_HEADER_BYTES;
    for (const uint64_t delta : {uint64_t(0), uint64_t(4097),
                                 uint64_t(info_->chunks[1].payloadBytes)
                                     - 1}) {
        SCOPED_TRACE(delta);
        ASSERT_TRUE(FaultInjector::flipByteAt(*path_, payload + delta));
        expectReject(Kind::BAD_CHECKSUM, 1024, payload, 1);
        ASSERT_TRUE(FaultInjector::flipByteAt(*path_, payload + delta));
        expectPristine();
    }

    // A single-*bit* flip must be caught too (weakest corruption).
    ASSERT_TRUE(FaultInjector::flipByteAt(*path_, payload + 100, 0x01));
    expectReject(Kind::BAD_CHECKSUM, 1024, payload, 1);
    ASSERT_TRUE(FaultInjector::flipByteAt(*path_, payload + 100, 0x01));
    expectPristine();
}

TEST_F(TraceV3Corruption, FirstChunkDamageDeliversZeroRecords)
{
    const uint64_t c0 = info_->chunks[0].offset;
    ASSERT_TRUE(FaultInjector::flipByteAt(*path_, c0 + v3::CHK_OFF_MAGIC));
    expectReject(Kind::BAD_CHUNK, 0, c0, 0);
    ASSERT_TRUE(FaultInjector::flipByteAt(*path_, c0 + v3::CHK_OFF_MAGIC));
    expectPristine();
}

TEST_F(TraceV3Corruption, IndexAndFooterFlipsAreTypedAndPaired)
{
    const uint64_t index_off = info_->indexOffset;
    const uint64_t footer_off = pristine_->size() - v3::FOOTER_BYTES;
    struct Row
    {
        const char *field;
        uint64_t offset;
        Kind kind;
        uint64_t errOffset;
    };
    const Row rows[] = {
        // Any index byte is covered by the footer's index checksum.
        {"indexEntry0", index_off + 3, Kind::BAD_INDEX, index_off},
        {"indexEntry2", index_off + 2 * v3::INDEX_ENTRY_BYTES + 20,
         Kind::BAD_INDEX, index_off},
        // Footer fields.
        {"footerIndexOffset", footer_off + 0, Kind::BAD_INDEX,
         footer_off},
        {"footerChunkCount", footer_off + 8, Kind::BAD_INDEX,
         footer_off},
        {"footerIndexChecksum", footer_off + 12, Kind::BAD_INDEX,
         index_off},
        {"footerMagic", footer_off + 20, Kind::TRUNCATED,
         pristine_->size() - 4},
    };
    for (const Row &row : rows) {
        SCOPED_TRACE(row.field);
        ASSERT_TRUE(FaultInjector::flipByteAt(*path_, row.offset));
        expectReject(row.kind, 0, row.errOffset);
        ASSERT_TRUE(FaultInjector::flipByteAt(*path_, row.offset));
        expectPristine();
    }

    // The reserved footer word is the one span checksums do not cover:
    // flipping it must NOT reject (documents the only hole, and keeps
    // the fuzz test's accept arm honest).
    ASSERT_TRUE(FaultInjector::flipByteAt(*path_, footer_off + 16));
    expectPristine();
    ASSERT_TRUE(FaultInjector::flipByteAt(*path_, footer_off + 16));
    expectPristine();
}

TEST_F(TraceV3Corruption, DuplicatedChunkIsCaughtByTheIndexCrossCheck)
{
    // Splice chunk 0's bytes over chunk 1 (same size: both are full
    // 1024-record raw chunks).  Chunk 1's header then carries
    // firstRecord 0, disagreeing with the FNV-sealed index entry.
    const V3Info::Chunk &c0 = info_->chunks[0];
    const V3Info::Chunk &c1 = info_->chunks[1];
    ASSERT_EQ(c0.payloadBytes, c1.payloadBytes);
    const size_t span = v3::CHUNK_HEADER_BYTES + c0.payloadBytes;

    std::vector<uint8_t> bytes = *pristine_;
    std::memcpy(bytes.data() + c1.offset, bytes.data() + c0.offset, span);
    spit(*path_, bytes);
    {
        SCOPED_TRACE("duplicated chunk");
        expectReject(Kind::BAD_CHUNK, 1024, c1.offset, 1);
    }
    const ReadResult r = readV3(*path_);
    EXPECT_NE(r.err.message.find("duplicated"), std::string::npos)
        << r.err.describe();

    spit(*path_, *pristine_);
    expectPristine();
}

TEST_F(TraceV3Corruption, TruncationIsTypedAtEveryCutPoint)
{
    struct Row
    {
        const char *site;
        uint64_t keep;
        Kind kind;
    };
    const Row rows[] = {
        {"insideHeader", 16, Kind::SHORT_HEADER},
        {"beforeFooterMinimum", v3::HEADER_BYTES + 10, Kind::TRUNCATED},
        {"midChunk1", info_->chunks[1].offset + 1000, Kind::TRUNCATED},
        {"atIndexStart", info_->indexOffset, Kind::TRUNCATED},
        {"insideFooter", pristine_->size() - 3, Kind::TRUNCATED},
    };
    for (const Row &row : rows) {
        SCOPED_TRACE(row.site);
        std::vector<uint8_t> bytes = *pristine_;
        bytes.resize(size_t(row.keep));
        spit(*path_, bytes);
        // A file cut off mid-write has no trustworthy index, so the
        // whole container is rejected at open: prefix 0.
        expectReject(row.kind, 0);
        spit(*path_, *pristine_);
        expectPristine();
    }
}

TEST_F(TraceV3Corruption, BufferedPathRejectsIdentically)
{
    // The buffered FILE* fallback must enforce the same matrix; spot
    // check one case per layer against the mmap results above.
    V3SourceOptions buffered;
    buffered.preferMmap = false;

    const uint64_t c1 = info_->chunks[1].offset;
    ASSERT_TRUE(FaultInjector::flipByteAt(*path_, c1 + v3::CHK_OFF_MAGIC));
    {
        clearTraceQuarantine();
        TraceV3Source src(*path_, buffered);
        EXPECT_FALSE(src.usedMmap());
        uint64_t n = 0;
        while (!src.done()) {
            src.advance();
            ++n;
        }
        EXPECT_EQ(n, 1024u);
        EXPECT_EQ(src.error().kind, Kind::BAD_CHUNK);
        EXPECT_EQ(src.error().chunkIndex, 1);
    }
    ASSERT_TRUE(FaultInjector::flipByteAt(*path_, c1 + v3::CHK_OFF_MAGIC));

    ASSERT_TRUE(FaultInjector::flipByteAt(*path_, v3::HDR_OFF_MAGIC));
    {
        clearTraceQuarantine();
        TraceV3Source src(*path_, buffered);
        EXPECT_EQ(src.error().kind, Kind::BAD_MAGIC);
        EXPECT_TRUE(src.done());
    }
    ASSERT_TRUE(FaultInjector::flipByteAt(*path_, v3::HDR_OFF_MAGIC));
    expectPristine();
}

// ---------------------------------------------------------------------
// Randomized mutation fuzz smoke: 500 mutated containers, zero crashes,
// zero escapes (an accepted full read must digest pristine).
// ---------------------------------------------------------------------

TEST(TraceV3Fuzz, RandomMutationsNeverCrashOrEscape)
{
    const Workload &w = findWorkload("gzip");
    const x86::Program prog = w.buildProgram(0);
    const uint64_t N = 900;
    const std::string path = ::testing::TempDir() + "fuzz.rpl3";

    V3Options raw_opts;
    raw_opts.chunkRecords = 128;
    raw_opts.codec = V3Codec::RAW;
    TraceV3Writer::dumpProgram(prog, N, path, raw_opts);
    const std::vector<uint8_t> raw_bytes = slurp(path);

    uint64_t want_digest = 0;
    {
        clearTraceQuarantine();
        TraceV3Source src(path);
        want_digest = wire::streamDigest(src);
        ASSERT_TRUE(src.ok());
        ASSERT_EQ(src.consumed(), N);
    }

    std::vector<uint8_t> zlib_bytes;
    if (v3ZlibAvailable()) {
        V3Options z = raw_opts;
        z.codec = V3Codec::ZLIB;
        TraceV3Writer::dumpProgram(prog, N, path, z);
        zlib_bytes = slurp(path);
        clearTraceQuarantine();
        TraceV3Source src(path);
        EXPECT_EQ(wire::streamDigest(src), want_digest)
            << "zlib and raw codecs must digest identically";
    }

    Rng rng(20260809);
    unsigned rejects = 0, accepts = 0;
    for (unsigned iter = 0; iter < 500; ++iter) {
        const bool use_zlib = !zlib_bytes.empty() && iter % 3 == 0;
        const std::vector<uint8_t> &base =
            use_zlib ? zlib_bytes : raw_bytes;
        std::vector<uint8_t> bytes = base;
        if (rng.chance(0.2)) {
            bytes.resize(size_t(rng.below(bytes.size())));
        } else {
            const unsigned flips = 1 + unsigned(rng.below(4));
            for (unsigned f = 0; f < flips; ++f)
                bytes[size_t(rng.below(bytes.size()))] ^=
                    uint8_t(1u << rng.below(8));
        }
        spit(path, bytes);

        clearTraceQuarantine();
        TraceV3Source src(path);
        const uint64_t digest = wire::streamDigest(src);
        if (src.ok()) {
            // Accepted: the stream must be byte-identical to pristine
            // — anything else is a silent-wrong-data escape.
            EXPECT_EQ(src.consumed(), N) << "iteration " << iter;
            EXPECT_EQ(digest, want_digest) << "iteration " << iter;
            ++accepts;
        } else {
            EXPECT_NE(src.error().kind, Kind::NONE);
            EXPECT_FALSE(src.error().path.empty()) << "iteration " << iter;
            EXPECT_LE(src.consumed(), N);
            ++rejects;
        }
    }
    // Nearly the whole file is checksummed (the 4-byte reserved footer
    // word is the only uncovered span), so accepts are rare.
    EXPECT_GE(rejects, 490u) << accepts << " accepts";
    clearTraceQuarantine();
}

// ---------------------------------------------------------------------
// Round-trip properties
// ---------------------------------------------------------------------

TEST(TraceV3RoundTrip, WriterReaderPreserveEveryField)
{
    const Workload &w = findWorkload("eon");   // exercises FP records
    const x86::Program prog = w.buildProgram(0);
    const std::string path = ::testing::TempDir() + "eon.rpl3";
    TraceV3Writer::dumpProgram(prog, 3000, path);

    clearTraceQuarantine();
    TraceV3Source src(path);
    ASSERT_TRUE(src.ok()) << src.error().describe();
    EXPECT_EQ(src.totalRecords(), 3000u);
    ExecutorTraceSource want(prog, 3000);
    expectIdenticalStreams(src, want);
    EXPECT_TRUE(src.ok());
}

TEST(TraceV3RoundTrip, ConvertedV2IsIdenticalForAllFourteenWorkloads)
{
    const uint64_t N = 1200;
    for (const Workload &w : standardWorkloads()) {
        SCOPED_TRACE(w.name);
        const x86::Program prog = w.buildProgram(0);
        const std::string v2_path =
            ::testing::TempDir() + w.name + ".rplt";
        const std::string v3_path =
            ::testing::TempDir() + w.name + ".rpl3";
        TraceFileWriter::dumpProgram(prog, N, v2_path);
        convertV2ToV3(v2_path, v3_path);

        // The container-independent stream digest ties all three
        // representations together: live synthesis, v2, converted v3.
        ExecutorTraceSource live(prog, N);
        const uint64_t want = wire::streamDigest(live);

        FileTraceSource v2(v2_path);
        EXPECT_EQ(wire::streamDigest(v2), want);
        ASSERT_TRUE(v2.ok());

        clearTraceQuarantine();
        TraceV3Source v3src(v3_path);
        EXPECT_EQ(wire::streamDigest(v3src), want);
        ASSERT_TRUE(v3src.ok()) << v3src.error().describe();
        EXPECT_EQ(v3src.consumed(), N);
    }
}

TEST(TraceV3RoundTrip, ZlibAndRawCodecsDeliverTheSameStream)
{
    if (!v3ZlibAvailable())
        GTEST_SKIP() << "built without zlib";
    const Workload &w = findWorkload("vortex");
    const x86::Program prog = w.buildProgram(0);
    const std::string raw_path = ::testing::TempDir() + "codec_raw.rpl3";
    const std::string z_path = ::testing::TempDir() + "codec_zlib.rpl3";
    V3Options raw_opts;
    raw_opts.codec = V3Codec::RAW;
    V3Options z_opts;
    z_opts.codec = V3Codec::ZLIB;
    TraceV3Writer::dumpProgram(prog, 4000, raw_path, raw_opts);
    TraceV3Writer::dumpProgram(prog, 4000, z_path, z_opts);

    clearTraceQuarantine();
    TraceV3Source a(raw_path), b(z_path);
    expectIdenticalStreams(b, a);
    EXPECT_TRUE(a.ok());
    EXPECT_TRUE(b.ok());

    // Compression must actually compress the synthetic traces.
    EXPECT_LT(std::filesystem::file_size(z_path),
              std::filesystem::file_size(raw_path) / 4);
}

TEST(TraceV3RoundTrip, MmapAndBufferedDeliverIdenticalStreams)
{
    const Workload &w = findWorkload("parser");
    const x86::Program prog = w.buildProgram(0);
    const std::string path = ::testing::TempDir() + "paths.rpl3";
    TraceV3Writer::dumpProgram(prog, 2500, path);

    clearTraceQuarantine();
    V3SourceOptions mm;
    mm.preferMmap = true;
    V3SourceOptions buf;
    buf.preferMmap = false;
    TraceV3Source a(path, mm), b(path, buf);
    if (mmapExpected()) {
        EXPECT_TRUE(a.usedMmap());
    }
    EXPECT_FALSE(b.usedMmap());
    expectIdenticalStreams(b, a);
    EXPECT_TRUE(a.ok());
    EXPECT_TRUE(b.ok());
}

TEST(TraceV3RoundTrip, EmptyContainerRoundTrips)
{
    const std::string path = ::testing::TempDir() + "empty.rpl3";
    {
        TraceV3Writer writer(path);
        const TraceError err = writer.close();
        ASSERT_TRUE(err.ok()) << err.describe();
    }
    const V3Info info = inspectV3(path);
    EXPECT_TRUE(info.ok()) << info.error.describe();
    EXPECT_EQ(info.recordCount, 0u);
    EXPECT_TRUE(info.chunks.empty());

    clearTraceQuarantine();
    TraceV3Source src(path);
    EXPECT_TRUE(src.ok()) << src.error().describe();
    EXPECT_TRUE(src.done());
    EXPECT_EQ(src.consumed(), 0u);
    EXPECT_TRUE(src.seekToRecord(0));
    EXPECT_TRUE(src.done());
}

TEST(TraceV3RoundTrip, LimitRecordsCapsThePresentedStream)
{
    const Workload &w = findWorkload("bzip2");
    const x86::Program prog = w.buildProgram(0);
    const std::string path = ::testing::TempDir() + "limit.rpl3";
    TraceV3Writer::dumpProgram(prog, 3000, path);

    clearTraceQuarantine();
    V3SourceOptions opts;
    opts.limitRecords = 700;
    TraceV3Source src(path, opts);
    EXPECT_EQ(src.totalRecords(), 700u);
    ExecutorTraceSource want(prog, 700);
    expectIdenticalStreams(src, want);
    EXPECT_TRUE(src.ok());
    EXPECT_EQ(src.consumed(), 700u);
}

TEST(TraceV3Open, SniffDispatchesV2AndV3AndRejectsGarbage)
{
    const Workload &w = findWorkload("twolf");
    const x86::Program prog = w.buildProgram(0);
    const uint64_t N = 800;
    ExecutorTraceSource live(prog, N);
    const uint64_t want = wire::streamDigest(live);

    const std::string v2_path = ::testing::TempDir() + "sniff.rplt";
    TraceFileWriter::dumpProgram(prog, N, v2_path);
    const std::string v3_path = ::testing::TempDir() + "sniff.rpl3";
    TraceV3Writer::dumpProgram(prog, N, v3_path);

    clearTraceQuarantine();
    TraceError err;
    auto v2 = openTraceFile(v2_path, &err);
    ASSERT_NE(v2, nullptr) << err.describe();
    EXPECT_EQ(wire::streamDigest(*v2), want);

    auto v3src = openTraceFile(v3_path, &err);
    ASSERT_NE(v3src, nullptr) << err.describe();
    EXPECT_EQ(wire::streamDigest(*v3src), want);

    // The v3 limit plumbs through the sniffing opener.
    auto capped = openTraceFile(v3_path, &err, 300);
    ASSERT_NE(capped, nullptr);
    ExecutorTraceSource head(prog, 300);
    EXPECT_EQ(wire::streamDigest(*capped), wire::streamDigest(head));

    const std::string junk = ::testing::TempDir() + "junk.bin";
    spit(junk, {'h', 'e', 'l', 'l', 'o', ' ', 'f', 's'});
    auto bad = openTraceFile(junk, &err);
    EXPECT_EQ(bad, nullptr);
    EXPECT_EQ(err.kind, Kind::BAD_MAGIC);
    EXPECT_EQ(err.path, junk);
}

TEST(TraceV3Inspect, IndexTilesTheFileExactly)
{
    const Workload &w = findWorkload("crafty");
    const std::string path = ::testing::TempDir() + "inspect.rpl3";
    V3Options opts;
    opts.chunkRecords = 256;
    TraceV3Writer::dumpProgram(w.buildProgram(0), 1000, path, opts);

    const V3Info info = inspectV3(path);
    ASSERT_TRUE(info.ok()) << info.error.describe();
    EXPECT_EQ(info.recordCount, 1000u);
    EXPECT_EQ(info.chunkRecords, 256u);
    EXPECT_EQ(info.recordBytes, wire::recordWireBytes());
    ASSERT_EQ(info.chunks.size(), 4u);   // 256+256+256+232

    uint64_t next_offset = v3::HEADER_BYTES;
    uint64_t next_record = 0;
    for (const V3Info::Chunk &c : info.chunks) {
        EXPECT_EQ(c.offset, next_offset);
        EXPECT_EQ(c.firstRecord, next_record);
        next_offset = c.offset + v3::CHUNK_HEADER_BYTES + c.payloadBytes;
        next_record = c.firstRecord + c.records;
    }
    EXPECT_EQ(next_offset, info.indexOffset);
    EXPECT_EQ(next_record, 1000u);
    EXPECT_EQ(info.chunks.back().records, 232u);
    EXPECT_EQ(info.fileBytes,
              info.indexOffset +
                  info.chunks.size() * v3::INDEX_ENTRY_BYTES +
                  v3::FOOTER_BYTES);
}

// ---------------------------------------------------------------------
// Seek / resume
// ---------------------------------------------------------------------

namespace {

/** Seek to @p target and verify the remainder against @p ref. */
void
expectSeekTail(TraceV3Source &src, uint64_t target,
               const std::vector<TraceRecord> &ref)
{
    const uint64_t N = ref.size();
    ASSERT_TRUE(src.seekToRecord(target)) << src.error().describe();
    if (target >= N) {
        EXPECT_TRUE(src.done());
        EXPECT_EQ(src.consumed(), 0u);
        return;
    }
    uint64_t i = target;
    while (!src.done()) {
        ASSERT_LT(i, N);
        EXPECT_EQ(src.peek()->pc, ref[size_t(i)].pc) << "record " << i;
        EXPECT_EQ(src.peek()->nextPc, ref[size_t(i)].nextPc);
        src.advance();
        ++i;
    }
    EXPECT_EQ(i, N) << "seek(" << target << ") tail ended early";
    EXPECT_EQ(src.consumed(), N - target);
    EXPECT_TRUE(src.ok()) << src.error().describe();
}

} // namespace

TEST(TraceV3Seek, AgreesWithSequentialReplayAtEveryBoundary)
{
    const Workload &w = findWorkload("crafty");
    const x86::Program prog = w.buildProgram(0);
    const uint64_t N = 2700;
    const std::string path = ::testing::TempDir() + "seek.rpl3";
    V3Options opts;
    opts.chunkRecords = 512;
    TraceV3Writer::dumpProgram(prog, N, path, opts);
    const auto ref = collectTrace(prog, N);

    // Chunk boundaries, mid-chunk, first/last, EOF, past-EOF — on both
    // the mmap and buffered read paths.
    const uint64_t targets[] = {0,    1,    511,  512, 513, 1024,
                                2047, 2559, 2699, N,   N + 4242};
    for (const bool prefer_mmap : {true, false}) {
        SCOPED_TRACE(prefer_mmap ? "mmap" : "buffered");
        V3SourceOptions so;
        so.preferMmap = prefer_mmap;
        for (const uint64_t t : targets) {
            SCOPED_TRACE(t);
            clearTraceQuarantine();
            TraceV3Source src(path, so);
            ASSERT_TRUE(src.ok()) << src.error().describe();
            expectSeekTail(src, t, ref);
        }
    }
}

TEST(TraceV3Seek, ReSeekOnTheSameSourceForwardAndBackward)
{
    const Workload &w = findWorkload("gzip");
    const x86::Program prog = w.buildProgram(0);
    const uint64_t N = 2048;
    const std::string path = ::testing::TempDir() + "reseek.rpl3";
    V3Options opts;
    opts.chunkRecords = 256;
    TraceV3Writer::dumpProgram(prog, N, path, opts);
    const auto ref = collectTrace(prog, N);

    clearTraceQuarantine();
    TraceV3Source src(path);
    ASSERT_TRUE(src.ok());

    // Read a prefix sequentially, jump ahead, then rewind behind the
    // already-recycled window — each tail must match the reference.
    for (unsigned i = 0; i < 300; ++i)
        src.advance();
    expectSeekTail(src, 1536, ref);    // forward, chunk boundary
    expectSeekTail(src, 100, ref);     // backward, mid-first-chunk
    expectSeekTail(src, N - 1, ref);   // last record
    expectSeekTail(src, 0, ref);       // full rewind
}

TEST(TraceV3Seek, ResumesAfterTransientFaultAtChunkBoundary)
{
    const Workload &w = findWorkload("parser");
    const x86::Program prog = w.buildProgram(0);
    const uint64_t N = 2048;
    const std::string path = ::testing::TempDir() + "seekfault.rpl3";
    V3Options opts;
    opts.chunkRecords = 512;
    TraceV3Writer::dumpProgram(prog, N, path, opts);
    const auto ref = collectTrace(prog, N);

    for (const bool prefer_mmap : {true, false}) {
        SCOPED_TRACE(prefer_mmap ? "mmap" : "buffered");
        clearTraceQuarantine();
        V3SourceOptions so;
        so.preferMmap = prefer_mmap;
        TraceV3Source src(path, so);
        ASSERT_TRUE(src.ok());

        // One injected transient fault on the first chunk load after
        // the seek: the retry must absorb it and resume the identical
        // stream from the boundary.
        unsigned fires = 1;
        src.setIoFaultInjector([&fires] {
            if (fires) {
                --fires;
                return true;
            }
            return false;
        });
        expectSeekTail(src, 1536, ref);
        EXPECT_EQ(src.ioRetries(), 1u);
        EXPECT_FALSE(traceQuarantined(path));
    }
}

// ---------------------------------------------------------------------
// Fault injection: transient retry, persistent quarantine (v2 parity)
// ---------------------------------------------------------------------

TEST(TraceV3Faults, TransientFaultsRetriedToFullStream)
{
    const Workload &w = findWorkload("gzip");
    const std::string path = ::testing::TempDir() + "v3transient.rpl3";
    V3Options opts;
    opts.chunkRecords = 64;     // many chunk loads => many fault draws
    TraceV3Writer::dumpProgram(w.buildProgram(0), 1500, path, opts);

    for (const bool prefer_mmap : {true, false}) {
        SCOPED_TRACE(prefer_mmap ? "mmap" : "buffered");
        clearTraceQuarantine();
        V3SourceOptions so;
        so.preferMmap = prefer_mmap;
        TraceV3Source src(path, so);
        Rng rng(42);
        src.setIoFaultInjector([&rng] { return rng.chance(0.15); });
        uint64_t n = 0;
        while (!src.done()) {
            src.advance();
            ++n;
        }
        EXPECT_TRUE(src.ok()) << src.error().describe();
        EXPECT_EQ(n, 1500u);
        EXPECT_GT(src.ioRetries(), 0u);
        EXPECT_FALSE(traceQuarantined(path));
    }
}

TEST(TraceV3Faults, PersistentFaultReadsErrorAndQuarantines)
{
    clearTraceQuarantine();
    const Workload &w = findWorkload("gzip");
    const std::string path = ::testing::TempDir() + "v3persistent.rpl3";
    TraceV3Writer::dumpProgram(w.buildProgram(0), 800, path);

    TraceV3Source src(path);
    src.setIoFaultInjector([] { return true; });
    while (!src.done())
        src.advance();
    EXPECT_EQ(src.error().kind, Kind::READ_ERROR);
    EXPECT_EQ(src.ioRetries(), TraceV3Source::MAX_READ_RETRIES);
    EXPECT_EQ(src.error().path, path);
    EXPECT_EQ(src.error().chunkIndex, 0);
    EXPECT_TRUE(traceQuarantined(path));

    // Session quarantine: the next open fails fast.
    TraceV3Source again(path);
    EXPECT_EQ(again.error().kind, Kind::QUARANTINED);
    EXPECT_TRUE(again.done());
    EXPECT_EQ(again.ioRetries(), 0u);

    clearTraceQuarantine();
    TraceV3Source clean(path);
    EXPECT_TRUE(clean.ok());
}

// ---------------------------------------------------------------------
// TraceError diagnostics: path + byte offset + chunk index (v3), path +
// byte offset (v2), and the describe() rendering of all three.
// ---------------------------------------------------------------------

TEST(TraceV3Diagnostics, ErrorsCarryPathOffsetAndChunk)
{
    const Workload &w = findWorkload("gzip");
    const std::string path = ::testing::TempDir() + "diag.rpl3";
    V3Options opts;
    opts.chunkRecords = 512;
    opts.codec = V3Codec::RAW;
    TraceV3Writer::dumpProgram(w.buildProgram(0), 1500, path, opts);
    const V3Info info = inspectV3(path);
    ASSERT_TRUE(info.ok());
    ASSERT_GE(info.chunks.size(), 2u);

    const uint64_t payload_off =
        info.chunks[1].offset + v3::CHUNK_HEADER_BYTES;
    ASSERT_TRUE(FaultInjector::flipByteAt(path, payload_off + 37));

    clearTraceQuarantine();
    TraceV3Source src(path);
    while (!src.done())
        src.advance();
    const TraceError &err = src.error();
    EXPECT_EQ(err.kind, Kind::BAD_CHECKSUM);
    EXPECT_EQ(err.path, path);
    EXPECT_EQ(err.byteOffset, payload_off);
    EXPECT_EQ(err.chunkIndex, 1);

    const std::string text = err.describe();
    EXPECT_NE(text.find(path), std::string::npos) << text;
    EXPECT_NE(text.find("@byte " + std::to_string(payload_off)),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("chunk 1"), std::string::npos) << text;
}

TEST(TraceV3Diagnostics, V2ErrorsCarryPathAndByteOffset)
{
    clearTraceQuarantine();
    const Workload &w = findWorkload("gzip");
    const std::string path = ::testing::TempDir() + "diag.rplt";
    TraceFileWriter::dumpProgram(w.buildProgram(0), 600, path);
    const auto size = std::filesystem::file_size(path);
    ASSERT_TRUE(FaultInjector::truncateFile(path, size / 2 + 7));

    FileTraceSource src(path);
    while (!src.done())
        src.advance();
    const TraceError &err = src.error();
    EXPECT_EQ(err.kind, Kind::TRUNCATED);
    EXPECT_EQ(err.path, path);
    // v2 layout: 20-byte header, then (4-byte guard + record) each.
    const uint64_t per_record = 4 + wire::recordWireBytes();
    EXPECT_EQ(err.byteOffset, 20 + src.produced() * per_record);
    EXPECT_EQ(err.chunkIndex, -1) << "v2 errors are not chunk-scoped";

    const std::string text = err.describe();
    EXPECT_NE(text.find(path), std::string::npos) << text;
    EXPECT_NE(text.find("@byte"), std::string::npos) << text;
    EXPECT_EQ(text.find("chunk"), std::string::npos) << text;
}

// ---------------------------------------------------------------------
// Corpus manifest round-trip on v3 containers
// ---------------------------------------------------------------------

TEST(TraceV3Corpus, ManifestRoundTripsAndPinsDigests)
{
    const std::string dir = ::testing::TempDir();
    const std::string manifest = dir + "corpus_t.json";
    std::vector<CorpusEntry> entries;
    for (const char *name : {"gzip", "excel"}) {
        const Workload &w = findWorkload(name);
        for (unsigned t = 0; t < w.numTraces; ++t) {
            const x86::Program prog = w.buildProgram(t);
            CorpusEntry e;
            e.id = std::string(name) + "." + std::to_string(t);
            e.workload = name;
            e.traceIdx = t;
            e.records = 600;
            e.file = "corpus_t." + e.id + ".rpl3";
            TraceV3Writer::dumpProgram(prog, 600, dir + e.file);
            ExecutorTraceSource live(prog, 600);
            e.digest = wire::streamDigest(live);
            entries.push_back(e);
        }
    }
    const TraceError werr = writeCorpusManifest(manifest, entries);
    ASSERT_TRUE(werr.ok()) << werr.describe();

    clearTraceQuarantine();
    const TraceCorpus corpus = TraceCorpus::load(manifest);
    ASSERT_TRUE(corpus.ok()) << corpus.error().describe();
    ASSERT_EQ(corpus.size(), entries.size());

    for (const CorpusEntry &want : entries) {
        const CorpusEntry *got = corpus.findById(want.id);
        ASSERT_NE(got, nullptr) << want.id;
        EXPECT_EQ(got->records, want.records);
        EXPECT_EQ(got->digest, want.digest);

        TraceError err;
        auto src = corpus.open(*got, 0, &err);
        ASSERT_NE(src, nullptr) << err.describe();
        EXPECT_EQ(wire::streamDigest(*src), want.digest);
    }

    // A recording shorter than the requested budget is a miss — the
    // caller must synthesize instead of replaying a prefix.
    EXPECT_NE(corpus.find("gzip", 0, 600), nullptr);
    EXPECT_EQ(corpus.find("gzip", 0, 601), nullptr);
    EXPECT_EQ(corpus.find("gzip", 99, 1), nullptr);
    EXPECT_EQ(corpus.find("nosuch", 0, 1), nullptr);

    // A damaged container is an open() error, pinned by the manifest.
    const CorpusEntry *victim = corpus.findById("excel.1");
    ASSERT_NE(victim, nullptr);
    ASSERT_TRUE(FaultInjector::truncateFile(
        corpus.resolvePath(*victim),
        std::filesystem::file_size(corpus.resolvePath(*victim)) - 10));
    TraceError err;
    EXPECT_EQ(corpus.open(*victim, 0, &err), nullptr);
    EXPECT_EQ(err.kind, Kind::TRUNCATED);
}
