/**
 * @file
 * Tests for the rePLay core: bias/target tables, frame construction,
 * frame cache replacement, alias profiling, and frame resolution
 * against the trace.
 */

#include <gtest/gtest.h>

#include "core/aliasprofile.hh"
#include "core/biastable.hh"
#include "core/constructor.hh"
#include "core/framecache.hh"
#include "core/sequencer.hh"
#include "trace/tracer.hh"
#include "trace/workload.hh"
#include "util/rng.hh"
#include "x86/asmbuilder.hh"

using namespace replay;
using namespace replay::core;
using trace::TraceRecord;
using x86::AsmBuilder;
using x86::Cond;
using x86::memAt;
using x86::Reg;

TEST(BiasTable, PromotesAfterEnoughSamples)
{
    BiasTable table(64, 16, 15, 16);
    EXPECT_EQ(table.classify(0x100), BranchBias::UNKNOWN);
    for (int i = 0; i < 32; ++i)
        table.record(0x100, true);
    EXPECT_EQ(table.classify(0x100), BranchBias::BIASED_TAKEN);

    for (int i = 0; i < 64; ++i)
        table.record(0x200, false);
    EXPECT_EQ(table.classify(0x200), BranchBias::BIASED_NOT_TAKEN);
}

TEST(BiasTable, MixedBranchNotPromoted)
{
    BiasTable table(64, 16, 15, 16);
    for (int i = 0; i < 64; ++i)
        table.record(0x300, i % 3 != 0);    // ~67% taken
    EXPECT_EQ(table.classify(0x300), BranchBias::NOT_BIASED);
}

TEST(BiasTable, ConflictStealsEntry)
{
    BiasTable table(16, 8, 15, 16);
    for (int i = 0; i < 32; ++i)
        table.record(0x100, true);
    // Same index (same low bits), different tag.
    for (int i = 0; i < 32; ++i)
        table.record(0x100 + 16 * 2, false);
    EXPECT_EQ(table.classify(0x100), BranchBias::UNKNOWN);
    EXPECT_EQ(table.classify(0x100 + 32), BranchBias::BIASED_NOT_TAKEN);
}

TEST(TargetTable, StableAfterStreak)
{
    TargetTable table(64, 8);
    for (int i = 0; i < 7; ++i)
        table.record(0x400, 0x5000);
    EXPECT_EQ(table.stableTarget(0x400), 0u);
    table.record(0x400, 0x5000);
    EXPECT_EQ(table.stableTarget(0x400), 0x5000u);
    table.record(0x400, 0x6000);    // target changed
    EXPECT_EQ(table.stableTarget(0x400), 0u);
}

TEST(FrameCache, LruEvictionByUopCapacity)
{
    FrameCache cache(100);
    auto mk = [](uint32_t pc, unsigned uops) {
        auto f = std::make_shared<Frame>();
        f->startPc = pc;
        f->pcs = {pc};
        f->body.resize(uops);
        return f;
    };
    cache.insert(mk(0x1000, 40));
    cache.insert(mk(0x2000, 40));
    EXPECT_EQ(cache.occupiedUops(), 80u);
    // Touch 0x1000 so 0x2000 is the LRU victim.
    EXPECT_NE(cache.lookup(0x1000), nullptr);
    cache.insert(mk(0x3000, 40));
    EXPECT_EQ(cache.probe(0x2000), nullptr);
    EXPECT_NE(cache.probe(0x1000), nullptr);
    EXPECT_NE(cache.probe(0x3000), nullptr);
}

TEST(FrameCache, ReplaceSameStartPc)
{
    FrameCache cache(100);
    auto f1 = std::make_shared<Frame>();
    f1->startPc = 0x1000;
    f1->body.resize(30);
    auto f2 = std::make_shared<Frame>();
    f2->startPc = 0x1000;
    f2->body.resize(20);
    cache.insert(f1);
    cache.insert(f2);
    EXPECT_EQ(cache.numFrames(), 1u);
    EXPECT_EQ(cache.occupiedUops(), 20u);
}

TEST(FrameCache, RejectsOversizedFrame)
{
    FrameCache cache(10);
    auto f = std::make_shared<Frame>();
    f->startPc = 0x1000;
    f->body.resize(11);
    cache.insert(f);
    EXPECT_EQ(cache.numFrames(), 0u);
}

namespace {

FramePtr
makeFrame(uint32_t pc, unsigned uops)
{
    auto f = std::make_shared<Frame>();
    f->startPc = pc;
    f->pcs = {pc};
    f->body.resize(uops);
    return f;
}

/** occupied_ must always equal the sum of resident frame sizes. */
void
expectConsistentOccupancy(FrameCache &cache,
                          const std::vector<uint32_t> &pcs)
{
    unsigned resident = 0;
    for (const uint32_t pc : pcs)
        if (auto f = cache.probe(pc))
            resident += f->numUops();
    EXPECT_EQ(cache.occupiedUops(), resident);
    EXPECT_LE(cache.occupiedUops(), cache.capacityUops());
}

} // anonymous namespace

TEST(FrameCache, OversizedRejectLeavesOccupancyUntouched)
{
    FrameCache cache(100);
    cache.insert(makeFrame(0x1000, 60));
    EXPECT_EQ(cache.occupiedUops(), 60u);
    cache.insert(makeFrame(0x2000, 101));       // larger than capacity
    EXPECT_EQ(cache.numFrames(), 1u);
    EXPECT_EQ(cache.occupiedUops(), 60u);
    EXPECT_EQ(cache.stats().get("rejected"), 1u);
}

TEST(FrameCache, ReinsertSamePcAccountsInvalidateThenInsert)
{
    // Replacing the frame at a PC must charge the new size only —
    // never old+new — even when the replacement forces evictions.
    FrameCache cache(100);
    cache.insert(makeFrame(0x1000, 40));
    cache.insert(makeFrame(0x2000, 40));
    EXPECT_EQ(cache.occupiedUops(), 80u);

    // Same PC, bigger body: 0x1000's 40 slots are released first, then
    // the 90-slot replacement still needs 0x2000 evicted.
    cache.insert(makeFrame(0x1000, 90));
    EXPECT_EQ(cache.numFrames(), 1u);
    EXPECT_EQ(cache.occupiedUops(), 90u);
    EXPECT_EQ(cache.probe(0x2000), nullptr);
    expectConsistentOccupancy(cache, {0x1000, 0x2000});

    // Same PC, smaller body: occupancy shrinks to the new size.
    cache.insert(makeFrame(0x1000, 10));
    EXPECT_EQ(cache.occupiedUops(), 10u);
    expectConsistentOccupancy(cache, {0x1000, 0x2000});
}

TEST(FrameCache, EvictionChurnNeverUnderflowsOccupancy)
{
    // Mixed insert / replace / invalidate churn with exact-fit
    // evictions.  occupied_ is unsigned: any double-release would wrap
    // it huge and the <= capacity invariant would trip immediately.
    FrameCache cache(64);
    std::vector<uint32_t> pcs;
    for (uint32_t i = 0; i < 16; ++i)
        pcs.push_back(0x1000 + i * 0x100);

    Rng rng(42);
    for (unsigned step = 0; step < 2000; ++step) {
        const uint32_t pc = pcs[rng.below(pcs.size())];
        switch (rng.below(4)) {
          case 0:
          case 1:
            cache.insert(makeFrame(pc, 1 + unsigned(rng.below(64))));
            break;
          case 2:
            cache.invalidate(pc);
            break;
          default:
            cache.lookup(pc);
            break;
        }
        expectConsistentOccupancy(cache, pcs);
    }

    // Drain completely: occupancy must land exactly on zero.
    for (const uint32_t pc : pcs)
        cache.invalidate(pc);
    EXPECT_EQ(cache.occupiedUops(), 0u);
    EXPECT_EQ(cache.numFrames(), 0u);

    // An exact-fit insert into the drained cache still works.
    cache.insert(makeFrame(0x9000, 64));
    EXPECT_EQ(cache.occupiedUops(), 64u);
}

TEST(AliasProfile, DirtyOnOverlapWithPrior)
{
    AliasProfile profile;
    std::vector<TraceRecord> records(2);
    records[0].pc = 0x100;
    records[0].numMemOps = 1;
    records[0].memOps[0] = {true, 0x2000, 4, 0};    // store A
    records[1].pc = 0x104;
    records[1].numMemOps = 1;
    records[1].memOps[0] = {true, 0x2002, 4, 0};    // overlaps A
    profile.observeInstance(records);

    EXPECT_TRUE(profile.cleanForSpeculation(0x100, 0));   // first store
    EXPECT_FALSE(profile.cleanForSpeculation(0x104, 0));  // overlapped
}

TEST(AliasProfile, MarkDirtyIsSticky)
{
    AliasProfile profile;
    EXPECT_TRUE(profile.cleanForSpeculation(0x500, 1));
    profile.markDirty(0x500, 1);
    EXPECT_FALSE(profile.cleanForSpeculation(0x500, 1));
}

// ---------------------------------------------------------------------
// Frame construction
// ---------------------------------------------------------------------

namespace {

/** A loop with one biased branch (taken 15/16) and a biased skip. */
x86::Program
biasedLoopProgram()
{
    AsmBuilder b;
    b.dataRegion("d", 4096);
    b.movRI(Reg::ESI, int32_t(b.dataAddr("d")));
    b.xorRR(Reg::ECX, Reg::ECX);
    b.label("loop");
    b.addRI(Reg::ECX, 1);
    b.movRR(Reg::EAX, Reg::ECX);
    b.andRI(Reg::EAX, 15);
    b.cmpRI(Reg::EAX, 0);
    b.jcc(Cond::E, "rare");         // taken 1/16: biased not-taken
    b.label("back");
    b.movRM(Reg::EBX, memAt(Reg::ESI, 0));
    b.addRI(Reg::EBX, 3);
    b.movMR(memAt(Reg::ESI, 0), Reg::EBX);
    b.jmp("loop");
    b.label("rare");
    b.addRI(Reg::EDX, 1);
    b.jmp("back");
    return b.build();
}

} // namespace

TEST(FrameConstructor, BuildsFramesFromBiasedLoop)
{
    FrameConstructor ctor;
    const auto prog = biasedLoopProgram();
    trace::ExecutorTraceSource src(prog, 4000);

    std::vector<FrameCandidate> candidates;
    while (!src.done()) {
        auto cand = ctor.observe(*src.peek());
        if (cand)
            candidates.push_back(std::move(*cand));
        src.advance();
    }
    ASSERT_FALSE(candidates.empty());

    for (const auto &cand : candidates) {
        EXPECT_GE(cand.uops.size(), 8u);
        EXPECT_LE(cand.uops.size(), 256u);
        EXPECT_EQ(cand.pcs.size(), cand.records.size());
        // Frames contain no conditional-branch micro-ops: promoted
        // branches are asserts.
        for (const auto &u : cand.uops)
            EXPECT_NE(u.op, uop::Op::BR);
        // Block annotations are monotone.
        for (size_t i = 1; i < cand.blocks.size(); ++i)
            EXPECT_GE(cand.blocks[i], cand.blocks[i - 1]);
    }

    // The loop's biased branch must eventually be promoted: some
    // candidate contains an assertion.
    bool saw_assert = false;
    for (const auto &cand : candidates)
        for (const auto &u : cand.uops)
            saw_assert |= u.op == uop::Op::ASSERT;
    EXPECT_TRUE(saw_assert);
}

TEST(FrameConstructor, MaxSizeRespected)
{
    // A long straight-line body forces frames to close at the limit.
    AsmBuilder b;
    b.dataRegion("d", 4096);
    b.movRI(Reg::ESI, int32_t(b.dataAddr("d")));
    b.label("loop");
    for (int i = 0; i < 200; ++i)
        b.addRI(Reg::EAX, i + 1);
    b.jmp("loop");
    const auto prog = b.build();

    ConstructorConfig cfg;
    FrameConstructor ctor(cfg);
    trace::ExecutorTraceSource src(prog, 3000);
    unsigned emitted = 0;
    while (!src.done()) {
        if (auto cand = ctor.observe(*src.peek())) {
            EXPECT_LE(cand->uops.size(), cfg.maxUops);
            EXPECT_GE(cand->uops.size(), cfg.maxUops - 8);
            ++emitted;
        }
        src.advance();
    }
    EXPECT_GE(emitted, 5u);
}

TEST(FrameConstructor, StableReturnBecomesValueAssert)
{
    // A single call site: the RET target is perfectly stable, so
    // construction continues through the return via a value assert.
    AsmBuilder b;
    b.dataRegion("d", 4096);
    b.movRI(Reg::ESI, int32_t(b.dataAddr("d")));
    b.label("loop");
    b.call("callee");
    b.addRI(Reg::EAX, 1);
    b.jmp("loop");
    b.label("callee");
    b.movRM(Reg::EBX, memAt(Reg::ESI, 0));
    b.addRI(Reg::EBX, 1);
    b.movMR(memAt(Reg::ESI, 0), Reg::EBX);
    b.ret();
    const auto prog = b.build();

    FrameConstructor ctor;
    trace::ExecutorTraceSource src(prog, 2000);
    bool saw_value_assert = false;
    while (!src.done()) {
        if (auto cand = ctor.observe(*src.peek())) {
            for (const auto &u : cand->uops) {
                if (u.op == uop::Op::ASSERT && u.valueAssert)
                    saw_value_assert = true;
            }
        }
        src.advance();
    }
    EXPECT_TRUE(saw_value_assert);
}

TEST(ResolveFrame, CommitsOnMatchingPath)
{
    Frame frame;
    frame.pcs = {0x100, 0x105, 0x10a};
    frame.nextPc = 0x110;

    std::vector<TraceRecord> records(3);
    records[0].pc = 0x100;
    records[0].nextPc = 0x105;
    records[1].pc = 0x105;
    records[1].nextPc = 0x10a;
    records[2].pc = 0x10a;
    records[2].nextPc = 0x110;
    trace::VectorTraceSource src(records);

    const auto outcome = resolveFrame(frame, src);
    EXPECT_EQ(outcome.kind, FrameOutcome::Kind::COMMITS);
}

TEST(ResolveFrame, AssertsOnDivergence)
{
    Frame frame;
    frame.pcs = {0x100, 0x105, 0x10a};
    frame.nextPc = 0x110;

    std::vector<TraceRecord> records(3);
    records[0].pc = 0x100;
    records[0].nextPc = 0x105;
    records[1].pc = 0x105;
    records[1].nextPc = 0x200;      // diverges here
    records[2].pc = 0x200;
    records[2].nextPc = 0x204;
    trace::VectorTraceSource src(records);

    const auto outcome = resolveFrame(frame, src);
    EXPECT_EQ(outcome.kind, FrameOutcome::Kind::ASSERTS);
    EXPECT_EQ(outcome.faultIndex, 1u);
}

TEST(ResolveFrame, DynamicExitIgnoresFinalTarget)
{
    Frame frame;
    frame.pcs = {0x100, 0x105};
    frame.nextPc = 0x110;
    frame.dynamicExit = true;

    std::vector<TraceRecord> records(2);
    records[0].pc = 0x100;
    records[0].nextPc = 0x105;
    records[1].pc = 0x105;
    records[1].nextPc = 0x9999;     // different target: still commits
    trace::VectorTraceSource src(records);

    EXPECT_EQ(resolveFrame(frame, src).kind,
              FrameOutcome::Kind::COMMITS);
}

TEST(ResolveFrame, UnsafeConflictDetected)
{
    Frame frame;
    frame.pcs = {0x100, 0x105, 0x10a};
    frame.nextPc = 0x110;
    frame.unsafeStores = {{1, 0}};  // instruction 1, first access

    std::vector<TraceRecord> records(3);
    records[0].pc = 0x100;
    records[0].nextPc = 0x105;
    records[0].numMemOps = 1;
    records[0].memOps[0] = {false, 0x3000, 4, 0};   // load
    records[1].pc = 0x105;
    records[1].nextPc = 0x10a;
    records[1].numMemOps = 1;
    records[1].memOps[0] = {true, 0x3002, 4, 0};    // unsafe store
    records[2].pc = 0x10a;
    records[2].nextPc = 0x110;
    trace::VectorTraceSource src(records);

    const auto outcome = resolveFrame(frame, src);
    EXPECT_EQ(outcome.kind, FrameOutcome::Kind::UNSAFE_CONFLICT);
    EXPECT_EQ(outcome.faultIndex, 1u);

    // Same frame, disjoint store: commits.
    records[1].memOps[0].addr = 0x4000;
    trace::VectorTraceSource src2(records);
    EXPECT_EQ(resolveFrame(frame, src2).kind,
              FrameOutcome::Kind::COMMITS);
}

TEST(RePlayEngine, BuildsAndServesFrames)
{
    EngineConfig cfg;
    RePlayEngine engine(cfg);
    const auto prog = biasedLoopProgram();
    trace::ExecutorTraceSource src(prog, 20000);

    uint64_t now = 0;
    unsigned hits = 0;
    while (!src.done()) {
        const TraceRecord *rec = src.peek();
        if (auto frame = engine.frameFor(rec->pc, now)) {
            const auto outcome = resolveFrame(*frame, src);
            if (outcome.kind == FrameOutcome::Kind::COMMITS) {
                ++hits;
                engine.frameCommitted(frame);
                for (unsigned i = 0; i < frame->numX86Insts(); ++i)
                    src.advance();
                now += frame->numUops();
                continue;
            }
            engine.frameAborted(frame, outcome);
        }
        engine.observeRetired(*rec, now);
        src.advance();
        now += 2;
    }
    EXPECT_GT(hits, 50u);
    EXPECT_GT(engine.cache().numFrames(), 0u);
}

TEST(FrameCache, StatsTrackHitsMissesEvictions)
{
    FrameCache cache(64);
    auto mk = [](uint32_t pc, unsigned uops) {
        auto f = std::make_shared<Frame>();
        f->startPc = pc;
        f->pcs = {pc};
        f->body.resize(uops);
        return f;
    };
    cache.insert(mk(0x1000, 40));
    cache.insert(mk(0x2000, 40));       // evicts 0x1000
    EXPECT_EQ(cache.stats().get("evictions"), 1u);
    EXPECT_EQ(cache.lookup(0x1000), nullptr);
    EXPECT_NE(cache.lookup(0x2000), nullptr);
    EXPECT_EQ(cache.stats().get("hits"), 1u);
    EXPECT_EQ(cache.stats().get("misses"), 1u);
}

TEST(FrameConstructor, LongflowEndsFrame)
{
    using x86::AsmBuilder;
    AsmBuilder b;
    b.dataRegion("d", 4096);
    b.movRI(x86::Reg::ESI, int32_t(b.dataAddr("d")));
    b.label("loop");
    for (int i = 0; i < 12; ++i)
        b.addRI(x86::Reg::EAX, i + 1);
    b.longflow();
    b.jmp("loop");
    const auto prog = b.build();

    FrameConstructor ctor;
    trace::ExecutorTraceSource src(prog, 400);
    unsigned emitted = 0;
    while (!src.done()) {
        if (auto cand = ctor.observe(*src.peek())) {
            ++emitted;
            // No frame may contain the long-flow instruction.
            for (const auto &u : cand->uops)
                EXPECT_NE(u.op, uop::Op::LONGFLOW);
        }
        src.advance();
    }
    EXPECT_GT(emitted, 3u);
}

TEST(FrameConstructor, CandidateRecordsMatchPcs)
{
    FrameConstructor ctor;
    const auto &w = trace::findWorkload("access");
    const auto prog = w.buildProgram(1);
    trace::ExecutorTraceSource src(prog, 20000);
    while (!src.done()) {
        if (auto cand = ctor.observe(*src.peek())) {
            ASSERT_EQ(cand->records.size(), cand->pcs.size());
            for (size_t i = 0; i < cand->pcs.size(); ++i)
                EXPECT_EQ(cand->records[i].pc, cand->pcs[i]);
            // Path continuity: each record's next is the next pc.
            for (size_t i = 0; i + 1 < cand->pcs.size(); ++i)
                EXPECT_EQ(cand->records[i].nextPc, cand->pcs[i + 1]);
        }
        src.advance();
    }
}

// ---------------------------------------------------------------------
// Quarantine (verifier-rejected frame blacklist)
// ---------------------------------------------------------------------

TEST(Quarantine, BlocksThenReadmits)
{
    QuarantineConfig cfg;
    cfg.basePenaltyCycles = 100;
    cfg.decayCycles = 10000;
    Quarantine q(cfg);

    EXPECT_FALSE(q.blocked(0x400, 0));
    q.add(0x400, 1000);
    EXPECT_TRUE(q.blocked(0x400, 1050));
    EXPECT_FALSE(q.blocked(0x400, 1100));        // penalty served
    EXPECT_EQ(q.stats().get("readmissions"), 1u);
    // Re-probing after readmission does not recount.
    EXPECT_FALSE(q.blocked(0x400, 1200));
    EXPECT_EQ(q.stats().get("readmissions"), 1u);
}

TEST(Quarantine, RepeatOffenderBacksOffExponentially)
{
    QuarantineConfig cfg;
    cfg.basePenaltyCycles = 100;
    cfg.maxPenaltyCycles = 800;
    cfg.decayCycles = 1000000;      // no decay within this test
    Quarantine q(cfg);

    q.add(0x400, 0);                // strike 1: blocked until 100
    EXPECT_FALSE(q.blocked(0x400, 100));
    q.add(0x400, 100);              // strike 2: blocked until 300
    EXPECT_TRUE(q.blocked(0x400, 250));
    EXPECT_FALSE(q.blocked(0x400, 300));
    q.add(0x400, 300);              // strike 3: blocked until 700
    EXPECT_TRUE(q.blocked(0x400, 650));
    q.add(0x400, 700);              // strike 4: capped at 700+800
    EXPECT_TRUE(q.blocked(0x400, 1400));
    EXPECT_FALSE(q.blocked(0x400, 1500));
    EXPECT_EQ(q.strikes(0x400, 1500), 4u);
}

TEST(Quarantine, QuietTimeForgivesStrikes)
{
    QuarantineConfig cfg;
    cfg.basePenaltyCycles = 100;
    cfg.decayCycles = 1000;
    Quarantine q(cfg);

    q.add(0x400, 0);
    q.add(0x400, 100);
    EXPECT_EQ(q.strikes(0x400, 200), 2u);
    EXPECT_EQ(q.strikes(0x400, 1200), 1u);      // one strike forgiven
    EXPECT_EQ(q.strikes(0x400, 2200), 0u);      // entry expired
    EXPECT_EQ(q.size(), 0u);
}

TEST(Quarantine, BackoffSaturatesAtManyStrikes)
{
    // Regression: the exponential backoff used to compute
    // base << (strikes - 1) unguarded, so a large base plus dozens of
    // strikes overflowed to a zero penalty and instantly unblocked the
    // worst offenders.  The penalty must saturate at the cap instead.
    QuarantineConfig cfg;
    cfg.basePenaltyCycles = 1u << 30;
    cfg.maxPenaltyCycles = 5000000;
    cfg.decayCycles = 1u << 30;
    Quarantine q(cfg);

    for (int i = 0; i < 80; ++i)
        q.add(0x400, 0);
    EXPECT_TRUE(q.blocked(0x400, 1));
    EXPECT_TRUE(q.blocked(0x400, cfg.maxPenaltyCycles - 1));
    EXPECT_FALSE(q.blocked(0x400, cfg.maxPenaltyCycles));
}

TEST(Quarantine, TableStaysBounded)
{
    QuarantineConfig cfg;
    cfg.basePenaltyCycles = 100;
    cfg.decayCycles = 1000000;
    cfg.maxEntries = 8;
    Quarantine q(cfg);

    for (uint32_t pc = 0; pc < 64; ++pc)
        q.add(0x1000 + pc * 4, pc);
    EXPECT_LE(q.size(), 8u);
    EXPECT_GT(q.stats().get("table_evictions"), 0u);
    // The most recent offender survives the pruning.
    EXPECT_TRUE(q.blocked(0x1000 + 63 * 4, 64));
}

TEST(RePlayEngine, QuarantinedFrameNotServed)
{
    RePlayEngine engine;
    auto frame = std::make_shared<Frame>();
    frame->startPc = 0x400;
    frame->pcs = {0x400};
    engine.cache().insert(frame);
    ASSERT_NE(engine.frameFor(0x400, 0), nullptr);

    engine.frameQuarantined(frame, 0);
    EXPECT_EQ(engine.frameFor(0x400, 1), nullptr);
    EXPECT_EQ(engine.stats().get("quarantines"), 1u);
    EXPECT_GT(engine.stats().get("quarantine_blocks"), 0u);
}

// ---------------------------------------------------------------------
// Sequencer edges: duplicate suppression, optimizer saturation,
// optimization-latency visibility, bias eviction, conflict handoff.
// ---------------------------------------------------------------------

TEST(RePlayEngine, DuplicateCandidatesSuppressed)
{
    // Feed the trace without ever fetching frames: the constructor
    // keeps re-synthesizing the same hot-loop frame, and every rebuild
    // after the first must be recognized as a duplicate of the cached
    // (or in-flight) frame rather than re-enqueued.
    RePlayEngine engine;
    const auto prog = biasedLoopProgram();
    trace::ExecutorTraceSource src(prog, 20000);

    uint64_t now = 0;
    while (!src.done()) {
        engine.observeRetired(*src.peek(), now);
        src.advance();
        now += 2;
    }
    EXPECT_GT(engine.stats().get("duplicate_candidates"), 10u);
    // The cache holds the few distinct frames, not one per rebuild.
    EXPECT_LE(engine.cache().numFrames(),
              engine.stats().get("candidates"));
    EXPECT_LE(engine.stats().get("candidates"), 16u);
}

TEST(RePlayEngine, SaturatedOptimizerDropsCandidates)
{
    // A depth-1 pipeline with an absurd per-uop latency stays busy for
    // the whole trace after the first frame; later candidates at other
    // start PCs must be dropped, not queued unboundedly.
    EngineConfig cfg;
    cfg.optPipelineDepth = 1;
    cfg.optCyclesPerUop = 100000;

    AsmBuilder b;
    b.dataRegion("d", 4096);
    b.movRI(Reg::ESI, int32_t(b.dataAddr("d")));
    b.label("loop");
    for (int i = 0; i < 200; ++i)
        b.addRI(Reg::EAX, i + 1);
    b.jmp("loop");
    const auto prog = b.build();

    RePlayEngine engine(cfg);
    trace::ExecutorTraceSource src(prog, 5000);
    uint64_t now = 0;
    while (!src.done()) {
        engine.observeRetired(*src.peek(), now);
        src.advance();
        now += 2;
    }
    EXPECT_EQ(engine.stats().get("candidates"), 1u);
    EXPECT_GT(engine.stats().get("optimizer_drops"), 0u);
    // Nothing became ready within the trace, so the cache is empty.
    EXPECT_EQ(engine.cache().numFrames(), 0u);
}

TEST(RePlayEngine, FrameVisibleOnlyAfterOptimizationLatency)
{
    // Discover a frame start PC with a standalone constructor first.
    const auto prog = biasedLoopProgram();
    uint32_t start_pc = 0;
    {
        FrameConstructor ctor;
        trace::ExecutorTraceSource src(prog, 4000);
        while (!src.done() && start_pc == 0) {
            if (auto cand = ctor.observe(*src.peek()))
                start_pc = cand->startPc;
            src.advance();
        }
        ASSERT_NE(start_pc, 0u);
    }

    // Replay the same trace into an engine with every observation at
    // now = 0: candidates are enqueued, but their ready times lie in
    // the future, so the frame must stay invisible at now = 0 and
    // appear once `now` passes the optimization latency.
    RePlayEngine engine;
    trace::ExecutorTraceSource src(prog, 4000);
    while (!src.done()) {
        engine.observeRetired(*src.peek(), 0);
        src.advance();
    }
    EXPECT_EQ(engine.frameFor(start_pc, 0), nullptr);
    EXPECT_NE(engine.frameFor(start_pc, 1u << 30), nullptr);
}

TEST(RePlayEngine, BiasEvictionAfterRepeatedAssertFires)
{
    EngineConfig cfg;    // evictFireThreshold = 4, evictFirePenalty = 8
    RePlayEngine engine(cfg);
    auto frame = std::make_shared<Frame>();
    frame->startPc = 0x500;
    frame->pcs = {0x500};
    engine.cache().insert(frame);

    FrameOutcome fires;
    fires.kind = FrameOutcome::Kind::ASSERTS;
    for (int i = 0; i < 3; ++i)
        engine.frameAborted(frame, fires);
    // Three fires: below the threshold, still cached.
    EXPECT_NE(engine.cache().probe(0x500), nullptr);
    EXPECT_EQ(engine.stats().get("bias_evictions"), 0u);

    engine.frameAborted(frame, fires);
    EXPECT_EQ(engine.cache().probe(0x500), nullptr);
    EXPECT_EQ(engine.stats().get("bias_evictions"), 1u);
    EXPECT_EQ(engine.stats().get("assert_fires"), 4u);
}

TEST(RePlayEngine, HotFrameSurvivesOccasionalAssertFires)
{
    // A frame that commits 97% of the time never trips the bias
    // watchdog: fires * penalty stays below the fetch count.
    RePlayEngine engine;
    auto frame = std::make_shared<Frame>();
    frame->startPc = 0x600;
    frame->pcs = {0x600};
    engine.cache().insert(frame);

    FrameOutcome fires;
    fires.kind = FrameOutcome::Kind::ASSERTS;
    for (int round = 0; round < 4; ++round) {
        for (int i = 0; i < 40; ++i)
            engine.frameCommitted(frame);
        engine.frameAborted(frame, fires);
        EXPECT_NE(engine.cache().probe(0x600), nullptr);
    }
    EXPECT_EQ(engine.stats().get("bias_evictions"), 0u);
    EXPECT_EQ(engine.stats().get("assert_fires"), 4u);
}

TEST(RePlayEngine, UnsafeConflictDirtiesSiteAndInvalidates)
{
    RePlayEngine engine;
    auto frame = std::make_shared<Frame>();
    frame->startPc = 0x700;
    frame->pcs = {0x700, 0x704, 0x708};
    frame->unsafeStores = {{1, 2}};     // inst 1, third access
    engine.cache().insert(frame);
    ASSERT_TRUE(engine.aliasProfile().cleanForSpeculation(0x704, 2));

    FrameOutcome conflict;
    conflict.kind = FrameOutcome::Kind::UNSAFE_CONFLICT;
    conflict.faultIndex = 1;
    engine.frameAborted(frame, conflict);

    // The store site is blacklisted for speculation and the frame is
    // gone, so the constructor rebuilds it with that store safe.
    EXPECT_FALSE(engine.aliasProfile().cleanForSpeculation(0x704, 2));
    EXPECT_EQ(engine.cache().probe(0x700), nullptr);
    EXPECT_EQ(engine.stats().get("unsafe_conflicts"), 1u);
    // A conflict is not an assert fire and must not count toward bias
    // eviction.
    EXPECT_EQ(engine.stats().get("assert_fires"), 0u);
}

TEST(RePlayEngine, QuarantineBlocksCandidateConstruction)
{
    // Collect every start PC the constructor would emit for this
    // trace, quarantine them all, then replay: no frame may be built
    // and each suppression must be counted.
    const auto prog = biasedLoopProgram();
    std::vector<uint32_t> start_pcs;
    {
        FrameConstructor ctor;
        trace::ExecutorTraceSource src(prog, 8000);
        while (!src.done()) {
            if (auto cand = ctor.observe(*src.peek()))
                start_pcs.push_back(cand->startPc);
            src.advance();
        }
        ASSERT_FALSE(start_pcs.empty());
    }

    EngineConfig cfg;
    cfg.quarantine.basePenaltyCycles = 1u << 30;
    RePlayEngine engine(cfg);
    for (const uint32_t pc : start_pcs)
        engine.quarantine().add(pc, 0);

    trace::ExecutorTraceSource src(prog, 8000);
    uint64_t now = 0;
    while (!src.done()) {
        engine.observeRetired(*src.peek(), now);
        src.advance();
        now += 2;
    }
    EXPECT_EQ(engine.cache().numFrames(), 0u);
    EXPECT_EQ(engine.stats().get("candidates"), 0u);
    EXPECT_GT(engine.stats().get("quarantine_candidate_drops"), 0u);
}

// ---------------------------------------------------------------------------
// Flat-index churn and capacity edges (PR 5).  The frame cache's index
// is an open-addressing table whose physical layout changes under load
// (growth rehashes, tombstone reuse, tombstone-dropping rehashes);
// none of that may be observable through replacement behaviour, which
// is defined purely by the LRU touch order.
// ---------------------------------------------------------------------------

TEST(FrameCache, LruExactAcrossRehashAndTombstones)
{
    // 20 resident frames of 10 uops: enough occupancy to force the
    // flat index through at least one growth rehash.
    FrameCache cache(200);
    std::vector<uint32_t> pcs;
    for (uint32_t i = 0; i < 20; ++i)
        pcs.push_back(0x1000 + i * 0x40);
    for (const uint32_t pc : pcs)
        cache.insert(makeFrame(pc, 10));
    ASSERT_EQ(cache.numFrames(), 20u);
    ASSERT_EQ(cache.occupiedUops(), 200u);

    // Establish a known LRU order by touching every frame.
    for (const uint32_t pc : pcs)
        ASSERT_NE(cache.lookup(pc), nullptr) << std::hex << pc;

    // Punch tombstones into the table and refill the slots, so later
    // probes walk displaced chains.
    for (size_t i = 0; i < pcs.size(); i += 3) {
        cache.invalidate(pcs[i]);
        cache.insert(makeFrame(pcs[i], 10));
        ASSERT_NE(cache.lookup(pcs[i]), nullptr);
    }

    // Re-touch in a fresh, known order; inserts must then evict in
    // exactly that order, one frame per insert (equal sizes).
    for (const uint32_t pc : pcs)
        ASSERT_NE(cache.lookup(pc), nullptr);
    std::vector<uint32_t> everyone = pcs;
    for (size_t i = 0; i < pcs.size(); ++i) {
        const uint32_t newcomer = 0x9000 + uint32_t(i) * 0x40;
        everyone.push_back(newcomer);
        cache.insert(makeFrame(newcomer, 10));
        expectConsistentOccupancy(cache, everyone);
        EXPECT_EQ(cache.probe(pcs[i]), nullptr)
            << "expected LRU victim " << std::hex << pcs[i];
        for (size_t j = i + 1; j < pcs.size(); ++j) {
            EXPECT_NE(cache.probe(pcs[j]), nullptr)
                << "non-LRU frame " << std::hex << pcs[j]
                << " evicted early";
        }
    }
}

TEST(FrameCache, ExactCapacityEdges)
{
    FrameCache cache(100);
    // Fill to exactly capacity: no eviction may fire.
    cache.insert(makeFrame(0x100, 60));
    cache.insert(makeFrame(0x200, 40));
    EXPECT_EQ(cache.occupiedUops(), 100u);
    EXPECT_EQ(cache.stats().counter("evictions").value(), 0u);

    // A frame of exactly the whole capacity is admissible and evicts
    // everything else.
    cache.insert(makeFrame(0x300, 100));
    EXPECT_EQ(cache.numFrames(), 1u);
    EXPECT_EQ(cache.occupiedUops(), 100u);
    EXPECT_NE(cache.probe(0x300), nullptr);

    // One micro-op over capacity is rejected without disturbing the
    // resident frame.
    cache.insert(makeFrame(0x400, 101));
    EXPECT_EQ(cache.numFrames(), 1u);
    EXPECT_NE(cache.probe(0x300), nullptr);
    EXPECT_EQ(cache.stats().counter("rejected").value(), 1u);
}

TEST(FrameCache, HeavyChurnKeepsIndexConsistent)
{
    // Deterministic pseudo-random insert/invalidate/lookup storm over
    // a pc universe several times the resident set, driving the flat
    // index through growth, tombstone accumulation, and compaction.
    FrameCache cache(256);
    Rng rng(0x5eed);
    std::vector<uint32_t> universe;
    for (uint32_t i = 0; i < 128; ++i)
        universe.push_back(0x4000 + i * 0x20);

    for (unsigned step = 0; step < 20000; ++step) {
        const uint32_t pc =
            universe[rng.next() % universe.size()];
        switch (rng.next() % 4) {
          case 0:
          case 1:
            cache.insert(makeFrame(pc, 8 + unsigned(rng.next() % 9)));
            break;
          case 2:
            cache.invalidate(pc);
            break;
          default:
            if (const FramePtr f = cache.lookup(pc)) {
                EXPECT_EQ(f->startPc, pc);
            }
            break;
        }
        ASSERT_LE(cache.occupiedUops(), cache.capacityUops());
    }
    // Conservation: every resident frame was inserted and neither
    // evicted nor invalidated.
    const uint64_t inserts = cache.stats().counter("inserts").value();
    const uint64_t evictions =
        cache.stats().counter("evictions").value();
    const uint64_t invalidations =
        cache.stats().counter("invalidations").value();
    EXPECT_GT(evictions, 0u);
    EXPECT_EQ(cache.numFrames(), inserts - evictions - invalidations);
    expectConsistentOccupancy(cache, universe);
}

TEST(RePlayEngine, SustainedChurnUnderTinyCacheStaysConsistent)
{
    // A deliberately undersized frame cache keeps the sequencer's
    // deposit path (insert -> evict churn) and the pooled-frame
    // recycling loop hot for the whole run.
    EngineConfig cfg;
    cfg.fcacheCapacityUops = 96;
    RePlayEngine engine(cfg);

    const auto &w = trace::findWorkload("crafty");
    const auto prog = w.buildProgram(0);
    trace::ExecutorTraceSource src(prog, 60000);
    uint64_t now = 0;
    uint64_t served = 0;
    while (!src.done()) {
        const TraceRecord rec = *src.peek();
        engine.observeRetired(rec, ++now);
        if ((now & 255) == 0 && engine.frameFor(rec.pc, now))
            ++served;
        ASSERT_LE(engine.cache().occupiedUops(),
                  engine.cache().capacityUops());
        src.advance();
    }

    auto &stats = engine.cache().stats();
    const uint64_t inserts = stats.counter("inserts").value();
    const uint64_t evictions = stats.counter("evictions").value();
    const uint64_t invalidations =
        stats.counter("invalidations").value();
    EXPECT_GT(inserts, 0u);
    EXPECT_GT(evictions, 0u);
    EXPECT_EQ(engine.cache().numFrames(),
              inserts - evictions - invalidations);
    (void)served;
}
