/**
 * @file
 * Timing-model tests: cache geometry and replacement, the branch
 * predictor composite, the out-of-order execution model's dataflow and
 * resource constraints, and fetch-cycle accounting.
 */

#include <gtest/gtest.h>

#include "timing/accounting.hh"
#include "timing/cache.hh"
#include "timing/fetch.hh"
#include "timing/predictor.hh"
#include "timing/window.hh"

using namespace replay;
using namespace replay::timing;

TEST(CacheModel, HitAfterFill)
{
    CacheModel cache("t", 1024, 64, 2, 1);
    EXPECT_FALSE(cache.access(0x1000));
    EXPECT_TRUE(cache.access(0x1000));
    EXPECT_TRUE(cache.access(0x1004));      // same line
    EXPECT_FALSE(cache.access(0x1040));     // next line
    EXPECT_EQ(cache.stats().get("hits"), 2u);
    EXPECT_EQ(cache.stats().get("misses"), 2u);
}

TEST(CacheModel, LruWithinSet)
{
    // 2-way, 8 sets of 64B lines: addresses 64*8 apart share a set.
    CacheModel cache("t", 1024, 64, 2, 1);
    const uint32_t stride = 64 * 8;
    cache.access(0);                // way 0
    cache.access(stride);           // way 1
    cache.access(0);                // touch way 0
    cache.access(2 * stride);       // evicts LRU = stride
    EXPECT_TRUE(cache.contains(0));
    EXPECT_FALSE(cache.contains(stride));
    EXPECT_TRUE(cache.contains(2 * stride));
}

TEST(MemoryHierarchy, LatenciesPerLevel)
{
    MemoryHierarchy mem;
    // Cold: misses everywhere -> memory latency.
    EXPECT_EQ(mem.access(0x5000), 50u);
    EXPECT_TRUE(mem.lastMissedL1());
    // Warm L1.
    EXPECT_EQ(mem.access(0x5000), 2u);
    EXPECT_FALSE(mem.lastMissedL1());
    // Evict from L1 but not L2: conflict addresses sharing an L1 set.
    // L1: 32kB/64B/4-way => 128 sets; stride = 128*64 = 8192.
    for (unsigned i = 1; i <= 4; ++i)
        mem.access(0x5000 + i * 8192);
    EXPECT_EQ(mem.access(0x5000), 10u);     // L2 hit
}

TEST(Predictor, LearnsBiasedBranch)
{
    BranchPredictor pred;
    trace::TraceRecord rec;
    rec.pc = 0x4000;
    rec.nextPc = 0x5000;
    rec.inst.mnem = x86::Mnem::JCC;
    rec.inst.form = x86::Form::REL;
    rec.inst.cc = x86::Cond::NE;
    rec.taken = true;

    unsigned early = 0, late = 0;
    for (int i = 0; i < 200; ++i) {
        const bool miss = pred.predictAndTrain(rec);
        if (i < 4)
            early += miss;
        if (i >= 100)
            late += miss;
    }
    EXPECT_GT(early, 0u);       // cold counters + BTB
    EXPECT_EQ(late, 0u);        // fully learned
}

TEST(Predictor, ReturnAddressStack)
{
    BranchPredictor pred;
    trace::TraceRecord call;
    call.pc = 0x1000;
    call.length = 5;
    call.nextPc = 0x9000;
    call.inst.mnem = x86::Mnem::CALL;
    call.inst.form = x86::Form::REL;
    call.taken = true;

    trace::TraceRecord ret;
    ret.pc = 0x9100;
    ret.nextPc = 0x1005;        // matches the pushed return address
    ret.inst.mnem = x86::Mnem::RET;
    ret.taken = true;

    pred.predictAndTrain(call);
    EXPECT_FALSE(pred.predictAndTrain(ret));

    // A corrupted return target mispredicts.
    pred.predictAndTrain(call);
    ret.nextPc = 0x7777;
    EXPECT_TRUE(pred.predictAndTrain(ret));
}

TEST(Predictor, IndirectJumpNeedsBtb)
{
    BranchPredictor pred;
    trace::TraceRecord jmp;
    jmp.pc = 0x2000;
    jmp.nextPc = 0x3000;
    jmp.inst.mnem = x86::Mnem::JMP;
    jmp.inst.form = x86::Form::R;
    jmp.taken = true;

    EXPECT_TRUE(pred.predictAndTrain(jmp));     // cold BTB
    EXPECT_FALSE(pred.predictAndTrain(jmp));    // learned target
    jmp.nextPc = 0x4000;                        // target changed
    EXPECT_TRUE(pred.predictAndTrain(jmp));
}

// ---------------------------------------------------------------------
// ExecModel
// ---------------------------------------------------------------------

namespace {

uop::Uop
aluUop()
{
    uop::Uop u;
    u.op = uop::Op::ADD;
    u.dst = uop::UReg::EAX;
    u.srcA = uop::UReg::EAX;
    u.imm = 1;
    return u;
}

uop::Uop
loadUop()
{
    uop::Uop u;
    u.op = uop::Op::LOAD;
    u.dst = uop::UReg::EBX;
    u.srcA = uop::UReg::ESI;
    return u;
}

uop::Uop
storeUop()
{
    uop::Uop u;
    u.op = uop::Op::STORE;
    u.srcA = uop::UReg::ESI;
    u.srcB = uop::UReg::EAX;
    return u;
}

} // namespace

TEST(ExecModel, DependencyChainSerializes)
{
    MemoryHierarchy mem;
    ExecModel exec(ExecParams{}, mem);

    uint64_t prev = 0;
    uint64_t completions[8];
    for (int i = 0; i < 8; ++i) {
        const auto t = exec.exec(0, aluUop(), &prev, prev ? 1 : 0);
        completions[i] = t.complete;
        prev = t.complete;
    }
    // Single-cycle ALU chain: each completion exactly one later.
    for (int i = 1; i < 8; ++i)
        EXPECT_EQ(completions[i], completions[i - 1] + 1);
}

TEST(ExecModel, IndependentUopsOverlap)
{
    MemoryHierarchy mem;
    ExecModel exec(ExecParams{}, mem);
    uint64_t first = 0, last = 0;
    for (int i = 0; i < 6; ++i) {
        const auto t = exec.exec(0, aluUop(), nullptr, 0);
        if (i == 0)
            first = t.complete;
        last = t.complete;
    }
    // Six simple ALUs: all six issue in the same cycle.
    EXPECT_EQ(first, last);
}

TEST(ExecModel, FunctionUnitContention)
{
    MemoryHierarchy mem;
    ExecParams params;
    params.complexAlus = 2;
    ExecModel exec(params, mem);
    uop::Uop mul;
    mul.op = uop::Op::MUL;
    mul.dst = uop::UReg::EAX;
    mul.srcA = uop::UReg::EAX;
    mul.imm = 3;

    std::vector<uint64_t> completes;
    for (int i = 0; i < 4; ++i)
        completes.push_back(exec.exec(0, mul, nullptr, 0).complete);
    // Two complex units: the 3rd/4th multiply issue a cycle later.
    EXPECT_EQ(completes[0], completes[1]);
    EXPECT_EQ(completes[2], completes[3]);
    EXPECT_EQ(completes[2], completes[0] + 1);
}

TEST(ExecModel, StoreToLoadForwarding)
{
    MemoryHierarchy mem;
    ExecModel exec(ExecParams{}, mem);
    // Warm the line so a non-forwarded load would be a 2-cycle hit.
    mem.access(0x8000);

    const auto st = exec.exec(0, storeUop(), nullptr, 0, 0x8000);
    const auto ld = exec.exec(0, loadUop(), nullptr, 0, 0x8000);
    // The load waits for the store's data and takes the bypass.
    EXPECT_EQ(ld.complete, st.complete + 1);
}

TEST(ExecModel, LoadMissPaysMemoryAndReplay)
{
    MemoryHierarchy mem;
    ExecParams params;
    ExecModel exec(params, mem);
    const auto t = exec.exec(0, loadUop(), nullptr, 0, 0xdead0000);
    EXPECT_TRUE(t.l1Miss);
    // Memory latency (50) plus the speculative-wakeup replay penalty.
    EXPECT_GE(t.complete - t.issue, 50u + params.replayPenalty);
}

TEST(ExecModel, BranchResolutionRespectsTable2)
{
    // Fetch-to-execute for a branch must be >= 15 cycles (Table 2).
    MemoryHierarchy mem;
    ExecModel exec(ExecParams{}, mem);
    uop::Uop br;
    br.op = uop::Op::BR;
    br.cc = x86::Cond::NE;
    br.readsFlags = true;
    const auto t = exec.exec(100, br, nullptr, 0);
    EXPECT_GE(t.complete, 100u + 15u);
}

TEST(ExecModel, WindowBackpressure)
{
    MemoryHierarchy mem;
    ExecParams params;
    params.windowSize = 64;
    ExecModel exec(params, mem);
    EXPECT_EQ(exec.fetchBackpressure(), 0u);
    // Fill the window with a serial dependency chain; retirement lags
    // and backpressure must eventually exceed the fetch cycle.
    uint64_t prev = 0;
    for (unsigned i = 0; i < 64; ++i)
        prev = exec.exec(0, aluUop(), &prev, prev ? 1 : 0).complete;
    EXPECT_GT(exec.fetchBackpressure(), 0u);
}

TEST(ExecModel, RetirementIsInOrderAndBounded)
{
    MemoryHierarchy mem;
    ExecParams params;
    ExecModel exec(params, mem);
    uint64_t last_retire = 0;
    unsigned at_same_cycle = 0;
    uint64_t prev_cycle = ~0ULL;
    for (int i = 0; i < 64; ++i) {
        const auto t = exec.exec(0, aluUop(), nullptr, 0);
        EXPECT_GE(t.retire, last_retire);
        last_retire = t.retire;
        if (t.retire == prev_cycle) {
            ++at_same_cycle;
            EXPECT_LT(at_same_cycle, params.width);
        } else {
            at_same_cycle = 0;
            prev_cycle = t.retire;
        }
    }
}

// ---------------------------------------------------------------------
// FrontEnd
// ---------------------------------------------------------------------

TEST(FrontEnd, DecodeWidthGroupsInsts)
{
    PipelineConfig cfg;
    FrontEnd fe(cfg);
    fe.icache().cache().access(0x1000);     // pre-warm

    std::vector<uint64_t> cycles;
    for (int i = 0; i < 9; ++i)
        cycles.push_back(fe.fetchIcacheInst(0x1000, 1));
    // 4 per cycle: insts 0-3 same cycle, 4-7 next, 8 the one after.
    EXPECT_EQ(cycles[0], cycles[3]);
    EXPECT_EQ(cycles[4], cycles[0] + 1);
    EXPECT_EQ(cycles[8], cycles[0] + 2);
}

TEST(FrontEnd, FrameFetchEightWide)
{
    PipelineConfig cfg;
    FrontEnd fe(cfg);
    std::vector<uint64_t> cycles;
    for (int i = 0; i < 17; ++i)
        cycles.push_back(fe.fetchFrameUop());
    EXPECT_EQ(cycles[0], cycles[7]);
    EXPECT_EQ(cycles[8], cycles[0] + 1);
    EXPECT_EQ(cycles[16], cycles[0] + 2);
}

TEST(FrontEnd, WaitCycleOnFrameToIcacheSwitch)
{
    PipelineConfig cfg;
    FrontEnd fe(cfg);
    fe.icache().cache().access(0x1000);
    fe.fetchFrameUop();
    const uint64_t before = fe.now();
    fe.fetchIcacheInst(0x1000, 1);
    // One cycle to close the frame group plus the Wait turnaround.
    EXPECT_EQ(fe.now(), before + 1 + cfg.waitCycles);
    EXPECT_EQ(fe.bins().get(CycleBin::WAIT), cfg.waitCycles);
}

TEST(FrontEnd, IcacheMissChargedToMissBin)
{
    PipelineConfig cfg;
    FrontEnd fe(cfg);
    fe.fetchIcacheInst(0x1000, 1);          // cold: miss
    EXPECT_EQ(fe.bins().get(CycleBin::MISS), cfg.icacheMissLatency);
}

TEST(FrontEnd, BinsSumToTotalAfterFinish)
{
    PipelineConfig cfg;
    FrontEnd fe(cfg);
    fe.icache().cache().access(0x1000);
    for (int i = 0; i < 20; ++i)
        fe.fetchIcacheInst(0x1000 + i * 4, 1);
    const uint64_t idle_target = fe.now() + 7;
    fe.idleUntil(idle_target, CycleBin::MISPRED);
    for (int i = 0; i < 9; ++i)
        fe.fetchFrameUop();
    fe.finish(fe.now() + 25);
    EXPECT_EQ(fe.bins().total(), fe.now());
    EXPECT_GT(fe.bins().get(CycleBin::ICACHE), 0u);
    EXPECT_GT(fe.bins().get(CycleBin::FRAME), 0u);
    // Closing the open ICache fetch group consumes one of the seven
    // idle cycles.
    EXPECT_EQ(fe.bins().get(CycleBin::MISPRED), 6u);
    EXPECT_GT(fe.bins().get(CycleBin::STALL), 0u);  // drain tail
}

TEST(Accounting, BinNamesAndMerge)
{
    CycleAccounting a, b;
    a.add(CycleBin::FRAME, 10);
    b.add(CycleBin::FRAME, 5);
    b.add(CycleBin::ASSERT, 2);
    a.merge(b);
    EXPECT_EQ(a.get(CycleBin::FRAME), 15u);
    EXPECT_EQ(a.get(CycleBin::ASSERT), 2u);
    EXPECT_EQ(a.total(), 17u);
    EXPECT_STREQ(cycleBinName(CycleBin::ASSERT), "assert");
    EXPECT_STREQ(cycleBinName(CycleBin::ICACHE), "icache");
}

TEST(PipelineConfig, DescribeMatchesTable2)
{
    PipelineConfig cfg;
    const std::string desc = cfg.describe();
    EXPECT_NE(desc.find("8-wide"), std::string::npos);
    EXPECT_NE(desc.find("18-bit gshare"), std::string::npos);
    EXPECT_NE(desc.find("512 instructions"), std::string::npos);
    EXPECT_NE(desc.find("6 simple ALU"), std::string::npos);
    EXPECT_NE(desc.find("4 load/store"), std::string::npos);
    EXPECT_NE(desc.find("50 cycles"), std::string::npos);
}
