/**
 * @file
 * State-verifier tests (§5.1.3), including the system-level property:
 * every frame the constructor+optimizer produce over every synthesized
 * workload transforms architectural state exactly as the original
 * instruction stream does.
 */

#include <algorithm>
#include <cstring>

#include <gtest/gtest.h>

#include "core/aliasprofile.hh"
#include "core/constructor.hh"
#include "core/sequencer.hh"
#include "trace/workload.hh"
#include "verify/memmap.hh"
#include "verify/verifier.hh"
#include "x86/executor.hh"

using namespace replay;
using namespace replay::verify;
using core::Frame;
using core::FrameCandidate;
using trace::TraceRecord;
using uop::UReg;

TEST(MemoryMaps, InitialHoldsPreFrameValues)
{
    std::vector<TraceRecord> records(3);
    records[0].numMemOps = 1;
    records[0].memOps[0] = {false, 0x1000, 4, 0xaabbccdd};  // load
    records[1].numMemOps = 1;
    records[1].memOps[0] = {true, 0x1000, 4, 0x11223344};   // store
    records[2].numMemOps = 1;
    records[2].memOps[0] = {false, 0x1000, 4, 0x11223344};  // reload

    const auto maps = FrameMaps::fromRecords(records);
    // Initial map: the first (pre-store) value.
    EXPECT_EQ(*maps.initial.byte(0x1000), 0xdd);
    EXPECT_EQ(*maps.initial.byte(0x1003), 0xaa);
    // Final map: the stored value.
    EXPECT_EQ(*maps.final.byte(0x1000), 0x44);
}

TEST(MemoryMaps, StoreFirstLocationNotInInitial)
{
    std::vector<TraceRecord> records(2);
    records[0].numMemOps = 1;
    records[0].memOps[0] = {true, 0x2000, 4, 1};
    records[1].numMemOps = 1;
    records[1].memOps[0] = {false, 0x2000, 4, 1};
    const auto maps = FrameMaps::fromRecords(records);
    EXPECT_FALSE(maps.initial.has(0x2000));
    EXPECT_TRUE(maps.final.has(0x2000));
}

// ---------------------------------------------------------------------
// System-level frame verification over the synthesized workloads.
// ---------------------------------------------------------------------

namespace {

opt::ArchState
snapshotState(const x86::Executor &exec)
{
    opt::ArchState st;
    for (unsigned r = 0; r < 8; ++r)
        st.regs[r] = exec.reg(static_cast<x86::Reg>(r));
    for (unsigned f = 0; f < 8; ++f) {
        uint32_t raw;
        const float v = exec.freg(static_cast<x86::FReg>(f));
        std::memcpy(&raw, &v, 4);
        st.regs[unsigned(uop::fpr(static_cast<x86::FReg>(f)))] = raw;
    }
    st.flags = exec.flags();
    return st;
}

core::Frame
buildFrame(const FrameCandidate &cand, const opt::OptimizedFrame &body)
{
    core::Frame frame;
    frame.startPc = cand.startPc;
    frame.pcs = cand.pcs;
    frame.nextPc = cand.nextPc;
    frame.dynamicExit = cand.dynamicExit;
    frame.body = body;
    for (const opt::FrameUop fu : frame.body) {
        if (fu.unsafe && fu.uop.isStore())
            frame.unsafeStores.push_back(
                {fu.uop.instIdx, fu.uop.memSeq});
    }
    std::sort(frame.unsafeStores.begin(), frame.unsafeStores.end());
    return frame;
}

/**
 * Run @p insts instructions of a workload; for every frame candidate,
 * optimize it with @p cfg and verify the optimized frame against the
 * observed records and the machine state at the frame's start.
 *
 * @return the number of frames verified
 */
unsigned
verifyWorkloadFrames(const trace::Workload &w, uint64_t insts,
                     const opt::OptConfig &cfg)
{
    const x86::Program prog = w.buildProgram(0);
    x86::Executor exec(prog);
    core::FrameConstructor ctor;
    core::AliasProfile profile;
    opt::Optimizer optimizer(cfg);
    opt::OptStats stats;

    // Ring of machine states at each retired-instruction boundary.
    std::vector<opt::ArchState> ring(512);
    uint64_t retired = 0;

    unsigned verified = 0;
    for (uint64_t i = 0; i < insts; ++i) {
        ring[retired % ring.size()] = snapshotState(exec);
        const auto info = exec.step();
        const TraceRecord rec = TraceRecord::fromStep(info);
        ++retired;

        auto cand = ctor.observe(rec);
        if (!cand)
            continue;
        EXPECT_EQ(cand->records.size(), cand->pcs.size());
        // A candidate includes its closing instruction exactly when it
        // ends with an unconverted indirect jump (dynamicExit); every
        // other closure (unbiased branch, size limit, long-flow) is
        // caused by an instruction outside the frame.  The ring holds
        // the machine state *before* each retired instruction, so the
        // frame's live-in is the state before its first instruction.
        const size_t n = cand->records.size();
        const uint64_t end = retired - (cand->closedByIncludedInst ? 0 : 1);
        EXPECT_GE(end, n);
        EXPECT_LE(n, ring.size());
        if (end < n || n > ring.size())
            continue;
        const opt::ArchState live_in = ring[(end - n) % ring.size()];

        const auto body =
            optimizer.optimize(cand->uops, cand->blocks, &profile,
                               stats);
        profile.observeInstance(cand->records);
        const core::Frame frame = buildFrame(*cand, body);
        const auto result =
            verifyFrame(frame, cand->records, live_in);
        EXPECT_TRUE(result.ok)
            << w.name << " frame @0x" << std::hex << frame.startPc
            << std::dec << ": " << result.message;
        ++verified;
        if (!result.ok)
            break;
    }
    return verified;
}

} // namespace

class FrameVerification
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(FrameVerification, OptimizedFramesPreserveArchitecture)
{
    const trace::Workload &w = trace::findWorkload(GetParam());
    const unsigned verified =
        verifyWorkloadFrames(w, 30000, opt::OptConfig::allOn());
    EXPECT_GT(verified, 10u) << "too few frames to be meaningful";
}

TEST_P(FrameVerification, BlockScopeFramesPreserveArchitecture)
{
    const trace::Workload &w = trace::findWorkload(GetParam());
    opt::OptConfig cfg;
    cfg.scope = opt::Scope::BLOCK;
    const unsigned verified = verifyWorkloadFrames(w, 20000, cfg);
    EXPECT_GT(verified, 5u);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, FrameVerification,
    ::testing::Values("bzip2", "crafty", "eon", "gzip", "parser",
                      "twolf", "vortex", "access", "dream", "excel",
                      "lotus", "photo", "power", "sound"));

TEST(Verifier, CatchesCorruptedFrame)
{
    // Build one genuine frame, then corrupt an immediate: the verifier
    // must flag the register (or memory) mismatch.
    const trace::Workload &w = trace::findWorkload("crafty");
    const x86::Program prog = w.buildProgram(0);
    x86::Executor exec(prog);
    core::FrameConstructor ctor;
    opt::Optimizer optimizer;
    opt::OptStats stats;

    std::vector<opt::ArchState> ring(512);
    uint64_t retired = 0;
    for (uint64_t i = 0; i < 50000; ++i) {
        ring[retired % ring.size()] = snapshotState(exec);
        const auto rec = TraceRecord::fromStep(exec.step());
        ++retired;
        auto cand = ctor.observe(rec);
        if (!cand)
            continue;
        const size_t n = cand->records.size();
        const uint64_t end = retired - (cand->closedByIncludedInst ? 0 : 1);
        if (end < n)
            continue;
        const opt::ArchState live_in = ring[(end - n) % ring.size()];
        auto body = optimizer.optimize(cand->uops, cand->blocks,
                                       nullptr, stats);
        core::Frame frame = buildFrame(*cand, body);

        // Sanity: the genuine frame verifies.
        const auto good = verifyFrame(frame, cand->records, live_in);
        ASSERT_TRUE(good.ok) << good.message;

        // Corrupt the first ALU immediate we can find.
        for (size_t k = 0; k < frame.body.size(); ++k) {
            if (frame.body.code.op[k] == uop::Op::ADD &&
                frame.body.srcB[k].isNone()) {
                frame.body.code.imm[k] += 4;
                const auto bad =
                    verifyFrame(frame, cand->records, live_in);
                EXPECT_FALSE(bad.ok);
                return;
            }
        }
    }
    FAIL() << "never found a corruptible frame";
}
