/**
 * @file
 * Tests for the trace substrate: record capture, lookahead sources, and
 * statistical properties of the synthesized workloads.
 */

#include <gtest/gtest.h>

#include <map>

#include "trace/record.hh"
#include "trace/tracer.hh"
#include "trace/workload.hh"
#include "uop/translator.hh"
#include "x86/asmbuilder.hh"

using namespace replay;
using namespace replay::trace;
using x86::AsmBuilder;
using x86::Cond;
using x86::memAt;
using x86::Reg;

TEST(TraceRecord, CapturesMemOpsAndRegWrites)
{
    AsmBuilder b;
    b.pushI(0x99);
    b.jmp("x");
    b.label("x");
    const x86::Program prog = b.build();
    const auto recs = collectTrace(prog, 2);
    ASSERT_EQ(recs.size(), 2u);
    EXPECT_EQ(recs[0].numMemOps, 1u);
    EXPECT_TRUE(recs[0].memOps[0].isStore);
    EXPECT_EQ(recs[0].memOps[0].data, 0x99u);
    EXPECT_EQ(recs[0].numRegWrites, 1u);
    EXPECT_TRUE(recs[1].isControl());
    EXPECT_TRUE(recs[1].taken);
}

TEST(ExecutorTraceSource, MatchesCollectedTrace)
{
    const Workload &w = findWorkload("crafty");
    const x86::Program prog = w.buildProgram(0);
    const auto collected = collectTrace(prog, 2000);

    ExecutorTraceSource src(prog, 2000);
    for (size_t i = 0; i < collected.size(); ++i) {
        const TraceRecord *rec = src.peek();
        ASSERT_NE(rec, nullptr);
        EXPECT_EQ(rec->pc, collected[i].pc);
        EXPECT_EQ(rec->nextPc, collected[i].nextPc);
        src.advance();
    }
    EXPECT_TRUE(src.done());
    EXPECT_EQ(src.consumed(), 2000u);
}

TEST(ExecutorTraceSource, DeepLookahead)
{
    const Workload &w = findWorkload("gzip");
    const x86::Program prog = w.buildProgram(0);
    ExecutorTraceSource src(prog, 1000);

    // Peek far ahead, then verify the records arrive unchanged.
    std::vector<uint32_t> ahead_pcs;
    for (unsigned k = 0; k < 400; ++k)
        ahead_pcs.push_back(src.peek(k)->pc);
    for (unsigned k = 0; k < 400; ++k) {
        EXPECT_EQ(src.peek()->pc, ahead_pcs[k]);
        src.advance();
    }
}

TEST(ExecutorTraceSource, EndsAtBudget)
{
    const Workload &w = findWorkload("bzip2");
    const x86::Program prog = w.buildProgram(0);
    ExecutorTraceSource src(prog, 50);
    unsigned n = 0;
    while (!src.done()) {
        src.advance();
        ++n;
    }
    EXPECT_EQ(n, 50u);
    EXPECT_EQ(src.peek(), nullptr);
}

TEST(Workloads, FourteenStandardApps)
{
    const auto &all = standardWorkloads();
    ASSERT_EQ(all.size(), 14u);
    unsigned spec = 0, desktop = 0;
    for (const auto &w : all) {
        if (w.type == AppType::SPECint)
            ++spec;
        else
            ++desktop;
    }
    EXPECT_EQ(spec, 7u);
    EXPECT_EQ(desktop, 7u);
    // Table 1 totals.
    EXPECT_EQ(findWorkload("excel").numTraces, 3u);
    EXPECT_EQ(findWorkload("bzip2").paperInsts, 50000000u);
}

TEST(Workloads, DeterministicSynthesis)
{
    const Workload &w = findWorkload("vortex");
    const auto a = collectTrace(w.buildProgram(0), 500);
    const auto b2 = collectTrace(w.buildProgram(0), 500);
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].pc, b2[i].pc);
        EXPECT_EQ(a[i].nextPc, b2[i].nextPc);
    }
}

TEST(Workloads, TracesOfOneAppDiffer)
{
    const Workload &w = findWorkload("excel");
    const auto a = collectTrace(w.buildProgram(0), 200);
    const auto b2 = collectTrace(w.buildProgram(1), 200);
    bool differs = false;
    for (size_t i = 0; i < a.size() && !differs; ++i)
        differs = a[i].pc != b2[i].pc;
    EXPECT_TRUE(differs);
}

namespace {

/** Per-branch-site taken statistics over a trace prefix. */
std::map<uint32_t, std::pair<uint64_t, uint64_t>>
branchStats(const Workload &w, uint64_t insts)
{
    std::map<uint32_t, std::pair<uint64_t, uint64_t>> stats;
    const x86::Program prog = w.buildProgram(0);
    x86::Executor exec(prog);
    for (uint64_t i = 0; i < insts; ++i) {
        const auto info = exec.step();
        if (info.placed->inst.isCondBranch()) {
            auto &[taken, total] = stats[info.pc];
            total += 1;
            taken += info.branchTaken ? 1 : 0;
        }
    }
    return stats;
}

} // namespace

TEST(Workloads, BranchBiasMatchesPersonality)
{
    // crafty uses biasBits = 5 => biased branches taken ~ 31/32.
    const auto stats = branchStats(findWorkload("crafty"), 400000);
    ASSERT_FALSE(stats.empty());
    unsigned biased_sites = 0, unbiased_sites = 0;
    for (const auto &[pc, tt] : stats) {
        const auto &[taken, total] = tt;
        if (total < 64)
            continue;
        const double ratio = double(taken) / double(total);
        if (ratio > 0.9 || ratio < 0.1)
            ++biased_sites;
        else if (ratio > 0.3 && ratio < 0.8)
            ++unbiased_sites;
    }
    // The personality mixes biased branch segments with loop branches
    // (biased) and occasional unbiased diamonds.
    EXPECT_GT(biased_sites, 5u);
    EXPECT_GT(unbiased_sites, 0u);
}

TEST(Workloads, UopToX86RatioNearPaper)
{
    // §5.1.1: "we attain an average micro-operation-to-x86 instruction
    // ratio of 1.4".  Check the whole workload set stays close.
    uop::Translator trans;
    double total_ratio = 0;
    for (const auto &w : standardWorkloads()) {
        const x86::Program prog = w.buildProgram(0);
        x86::Executor exec(prog);
        uint64_t x86n = 0, uopn = 0;
        std::vector<uop::Uop> flow;
        for (unsigned i = 0; i < 20000; ++i) {
            const auto info = exec.step();
            flow.clear();
            trans.translate(info.placed->inst, info.pc,
                            info.pc + info.placed->length, flow);
            ++x86n;
            uopn += flow.size();
        }
        const double ratio = double(uopn) / double(x86n);
        EXPECT_GT(ratio, 1.05) << w.name;
        EXPECT_LT(ratio, 1.75) << w.name;
        total_ratio += ratio;
    }
    // Our subset omits the microcoded string/BCD flows that pull real
    // x86 up to the paper's 1.4; see DESIGN.md.
    const double avg = total_ratio / 14.0;
    EXPECT_GT(avg, 1.10);
    EXPECT_LT(avg, 1.55);
}

TEST(Workloads, DesktopCodeFootprintExceedsSpec)
{
    // Desktop applications should pressure the 8kB ICache more than
    // SPEC (drives the coverage difference in §6.1).
    uint64_t spec_bytes = 0, desk_bytes = 0;
    unsigned spec_n = 0, desk_n = 0;
    for (const auto &w : standardWorkloads()) {
        const auto prog = w.buildProgram(0);
        if (w.type == AppType::SPECint) {
            spec_bytes += prog.codeBytes();
            ++spec_n;
        } else {
            desk_bytes += prog.codeBytes();
            ++desk_n;
        }
    }
    EXPECT_GT(desk_bytes / desk_n, spec_bytes / spec_n);
}

// ---------------------------------------------------------------------
// Trace-file serialization
// ---------------------------------------------------------------------

#include "trace/tracefile.hh"

TEST(TraceFile, RoundTripPreservesEveryField)
{
    const Workload &w = findWorkload("eon");   // exercises FP records
    const x86::Program prog = w.buildProgram(0);
    const auto reference = collectTrace(prog, 3000);

    const std::string path = ::testing::TempDir() + "eon.rplt";
    TraceFileWriter::dumpProgram(prog, 3000, path);

    FileTraceSource src(path);
    EXPECT_EQ(src.totalRecords(), 3000u);
    for (const auto &want : reference) {
        const TraceRecord *got = src.peek();
        ASSERT_NE(got, nullptr);
        EXPECT_EQ(got->pc, want.pc);
        EXPECT_EQ(got->nextPc, want.nextPc);
        EXPECT_EQ(got->length, want.length);
        EXPECT_EQ(got->taken, want.taken);
        EXPECT_EQ(got->flagsAfter, want.flagsAfter);
        EXPECT_TRUE(got->inst == want.inst);
        ASSERT_EQ(got->numRegWrites, want.numRegWrites);
        for (unsigned i = 0; i < want.numRegWrites; ++i) {
            EXPECT_EQ(got->regWrites[i].reg, want.regWrites[i].reg);
            EXPECT_EQ(got->regWrites[i].value, want.regWrites[i].value);
        }
        ASSERT_EQ(got->numMemOps, want.numMemOps);
        for (unsigned i = 0; i < want.numMemOps; ++i) {
            EXPECT_EQ(got->memOps[i].isStore, want.memOps[i].isStore);
            EXPECT_EQ(got->memOps[i].addr, want.memOps[i].addr);
            EXPECT_EQ(got->memOps[i].size, want.memOps[i].size);
            EXPECT_EQ(got->memOps[i].data, want.memOps[i].data);
        }
        src.advance();
    }
    EXPECT_TRUE(src.done());
}

TEST(TraceFile, LookaheadAcrossFileBuffer)
{
    const Workload &w = findWorkload("gzip");
    const x86::Program prog = w.buildProgram(0);
    const std::string path = ::testing::TempDir() + "gzip.rplt";
    TraceFileWriter::dumpProgram(prog, 2000, path);

    FileTraceSource src(path);
    std::vector<uint32_t> ahead;
    for (unsigned k = 0; k < 400; ++k)
        ahead.push_back(src.peek(k)->pc);
    for (unsigned k = 0; k < 400; ++k) {
        EXPECT_EQ(src.peek()->pc, ahead[k]);
        src.advance();
    }
}

TEST(TraceFile, RingWraparoundDeliversIdenticalStream)
{
    // Stream enough records to wrap the lookahead ring several times
    // (ring = 2 x LOOKAHEAD entries) while the batched block reader
    // refills it, with deep peeks pinned across every wrap point.  The
    // delivered stream must be byte-for-byte what a fresh executor
    // produces.
    const Workload &w = findWorkload("crafty");
    const x86::Program prog = w.buildProgram(0);
    const uint64_t total = uint64_t(TraceSource::LOOKAHEAD) * 7 + 123;
    const std::string path = ::testing::TempDir() + "crafty_wrap.rplt";
    TraceFileWriter::dumpProgram(prog, total, path);

    ExecutorTraceSource ref(prog, total);
    FileTraceSource src(path);
    uint64_t n = 0;
    while (!ref.done()) {
        ASSERT_FALSE(src.done()) << "file stream ended early at " << n;
        const TraceRecord *got = src.peek();
        const TraceRecord *want = ref.peek();
        ASSERT_NE(got, nullptr);
        EXPECT_EQ(got->pc, want->pc) << "record " << n;
        EXPECT_EQ(got->nextPc, want->nextPc) << "record " << n;
        EXPECT_EQ(got->numMemOps, want->numMemOps) << "record " << n;
        // Deep peek across the upcoming ring boundary: must agree with
        // what advance() later delivers, despite batched refills.
        if ((n % (TraceSource::LOOKAHEAD / 2)) == 0) {
            const TraceRecord *far = src.peek(TraceSource::LOOKAHEAD - 1);
            const TraceRecord *far_ref = ref.peek(TraceSource::LOOKAHEAD - 1);
            ASSERT_EQ(far == nullptr, far_ref == nullptr);
            if (far) {
                EXPECT_EQ(far->pc, far_ref->pc) << "deep peek at " << n;
            }
        }
        src.advance();
        ref.advance();
        ++n;
    }
    EXPECT_TRUE(src.done());
    EXPECT_EQ(n, total);
    EXPECT_TRUE(src.ok());
}

// ---------------------------------------------------------------------
// Batched-read fault recovery: ferror is transient (retry), feof is
// truncation, persistence quarantines the path for the session.
// ---------------------------------------------------------------------

#include <filesystem>

#include "fault/faultinjector.hh"
#include "util/rng.hh"

namespace {

/** Write a small pristine trace; returns its path. */
std::string
writeTrace(const char *name, uint64_t records)
{
    const Workload &w = findWorkload("gzip");
    const std::string path = ::testing::TempDir() + name;
    TraceFileWriter::dumpProgram(w.buildProgram(0), records, path);
    return path;
}

} // namespace

TEST(TraceFileFaults, TransientFaultsRetriedToFullStream)
{
    clearTraceQuarantine();
    const std::string path = writeTrace("transient.rplt", 1500);

    // Fault ~15% of batched read attempts: every one must be absorbed
    // by the bounded retry (aborting needs MAX_READ_RETRIES + 1
    // consecutive hits, vanishingly unlikely in this seeded stream),
    // delivering the identical full stream.
    FileTraceSource src(path);
    Rng rng(42);
    src.setIoFaultInjector([&rng] { return rng.chance(0.15); });
    uint64_t n = 0;
    while (!src.done()) {
        src.advance();
        ++n;
    }
    EXPECT_TRUE(src.ok())
        << traceErrorKindName(src.error().kind) << ": "
        << src.error().message;
    EXPECT_EQ(n, 1500u);
    EXPECT_GT(src.ioRetries(), 0u);
    // A recovered trace is NOT quarantined.
    EXPECT_FALSE(traceQuarantined(path));
}

TEST(TraceFileFaults, PersistentFaultReadsErrorAndQuarantines)
{
    clearTraceQuarantine();
    const std::string path = writeTrace("persistent.rplt", 800);

    FileTraceSource src(path);
    src.setIoFaultInjector([] { return true; });
    while (!src.done())
        src.advance();
    EXPECT_EQ(src.error().kind, TraceError::Kind::READ_ERROR);
    EXPECT_EQ(src.ioRetries(), FileTraceSource::MAX_READ_RETRIES);
    EXPECT_TRUE(traceQuarantined(path));
    EXPECT_EQ(traceQuarantineSize(), 1u);

    // Session quarantine: the next open fails fast, no I/O retries.
    FileTraceSource again(path);
    EXPECT_EQ(again.error().kind, TraceError::Kind::QUARANTINED);
    EXPECT_TRUE(again.done());
    EXPECT_EQ(again.ioRetries(), 0u);

    clearTraceQuarantine();
    FileTraceSource clean(path);
    EXPECT_TRUE(clean.ok());
}

TEST(TraceFileFaults, TruncationIsNotMistakenForReadError)
{
    clearTraceQuarantine();
    const std::string path = writeTrace("truncated.rplt", 600);

    // Chop mid-record: an honest feof short-read must surface as
    // TRUNCATED (valid prefix delivered), never as the retriable
    // READ_ERROR — and must not waste retries or quarantine the path.
    const auto size = std::filesystem::file_size(path);
    ASSERT_TRUE(fault::FaultInjector::truncateFile(path, size / 2 + 7));
    FileTraceSource src(path);
    uint64_t n = 0;
    while (!src.done()) {
        src.advance();
        ++n;
    }
    EXPECT_EQ(src.error().kind, TraceError::Kind::TRUNCATED);
    EXPECT_GT(n, 0u);
    EXPECT_LT(n, 600u);
    EXPECT_EQ(src.ioRetries(), 0u);
    EXPECT_FALSE(traceQuarantined(path));
}
