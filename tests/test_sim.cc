/**
 * @file
 * End-to-end simulator tests: the four machine configurations run the
 * synthesized workloads and must reproduce the paper's qualitative
 * results — rePLay+Optimization fastest almost everywhere, meaningful
 * micro-op/load reduction, high SPEC frame coverage, small assert-cycle
 * shares, and deterministic results.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>

#include "sim/runner.hh"
#include "sim/tracecachefill.hh"
#include "util/logging.hh"

using namespace replay;
using namespace replay::sim;
using timing::CycleBin;

namespace {

RunStats
quickRun(const std::string &workload, Machine machine,
         uint64_t insts = 120000)
{
    return runWorkload(trace::findWorkload(workload),
                       SimConfig::make(machine), insts);
}

} // namespace

TEST(Configs, FactoryMatchesSection53)
{
    const auto ic = SimConfig::make(Machine::IC);
    EXPECT_EQ(ic.pipe.icacheBytes, 64u * 1024);
    EXPECT_FALSE(ic.usesFrames());
    EXPECT_FALSE(ic.usesTraceCache());

    const auto tc = SimConfig::make(Machine::TC);
    EXPECT_EQ(tc.pipe.icacheBytes, 8u * 1024);
    EXPECT_TRUE(tc.usesTraceCache());
    EXPECT_EQ(tc.tcCapacityUops, 16384u);
    EXPECT_EQ(tc.tcMaxBranches, 3u);

    const auto rp = SimConfig::make(Machine::RP);
    EXPECT_TRUE(rp.usesFrames());
    EXPECT_FALSE(rp.engine.optimize);
    EXPECT_EQ(rp.engine.fcacheCapacityUops, 16384u);

    const auto rpo = SimConfig::make(Machine::RPO);
    EXPECT_TRUE(rpo.engine.optimize);
}

TEST(Simulator, BinsSumToCycles)
{
    for (const Machine m :
         {Machine::IC, Machine::TC, Machine::RP, Machine::RPO}) {
        const auto stats = quickRun("crafty", m, 60000);
        EXPECT_EQ(stats.bins.total(), stats.cycles());
        EXPECT_GT(stats.ipc(), 0.3);
        EXPECT_EQ(stats.x86Retired, 60000u);
    }
}

TEST(Simulator, Deterministic)
{
    const auto a = quickRun("vortex", Machine::RPO, 60000);
    const auto b = quickRun("vortex", Machine::RPO, 60000);
    EXPECT_EQ(a.cycles(), b.cycles());
    EXPECT_EQ(a.uopsExecuted, b.uopsExecuted);
    EXPECT_EQ(a.frameCommits, b.frameCommits);
    EXPECT_EQ(a.frameAborts, b.frameAborts);
}

TEST(Simulator, OptimizationRemovesUopsAndLoads)
{
    const auto rpo = quickRun("bzip2", Machine::RPO);
    EXPECT_GT(rpo.uopReduction(), 0.10);
    EXPECT_LT(rpo.uopReduction(), 0.55);
    EXPECT_GT(rpo.loadReduction(), 0.08);

    // Plain rePLay removes nothing.
    const auto rp = quickRun("bzip2", Machine::RP);
    EXPECT_DOUBLE_EQ(rp.uopReduction(), 0.0);
}

TEST(Simulator, RpoBeatsRpBeatsIc)
{
    // The headline ordering on a representative workload.
    const auto ic = quickRun("eon", Machine::IC);
    const auto rp = quickRun("eon", Machine::RP);
    const auto rpo = quickRun("eon", Machine::RPO);
    EXPECT_GT(rp.ipc(), ic.ipc());
    EXPECT_GT(rpo.ipc(), rp.ipc() * 1.05);
}

TEST(Simulator, HighFrameCoverageOnSpec)
{
    const auto stats = quickRun("crafty", Machine::RPO);
    EXPECT_GT(stats.coverage(), 0.80);
    EXPECT_GT(stats.frameCommits, 500u);
}

TEST(Simulator, AssertCyclesBounded)
{
    // §6.1: assertion recovery is a small share of execution.
    for (const char *name : {"crafty", "vortex", "excel"}) {
        const auto stats = quickRun(name, Machine::RPO);
        const double share =
            double(stats.bins.get(CycleBin::ASSERT)) /
            double(stats.cycles());
        EXPECT_LT(share, 0.12) << name;
    }
}

TEST(Simulator, UnsafeStoreConflictsOnlyWithSpeculation)
{
    // Excel's aliasing pattern produces unsafe-store aborts under RPO;
    // plain rePLay never marks stores unsafe.
    const auto rp = quickRun("excel", Machine::RP);
    EXPECT_EQ(rp.unsafeConflicts, 0u);
    const auto rpo = quickRun("excel", Machine::RPO, 200000);
    EXPECT_GT(rpo.unsafeConflicts, 0u);
}

TEST(Simulator, TraceCacheUsesFramesBin)
{
    const auto tc = quickRun("gzip", Machine::TC);
    EXPECT_GT(tc.bins.get(CycleBin::FRAME), tc.cycles() / 4);
    EXPECT_EQ(tc.frameAborts, 0u);      // traces never abort
    EXPECT_EQ(tc.uopReduction(), 0.0);  // and never optimize
}

TEST(Simulator, MispredictsDropInsideFrames)
{
    // Promoted branches don't consult the predictor, so RP sees far
    // fewer mispredict events than IC on branchy code.
    const auto ic = quickRun("crafty", Machine::IC);
    const auto rp = quickRun("crafty", Machine::RP);
    // Branch instances inside committed frames never charge a
    // prediction penalty, so charged events are a strict subset of the
    // conventional machine's.
    EXPECT_LT(rp.mispredicts * 4, ic.mispredicts * 3);
}

TEST(Simulator, MultiTraceWorkloadsMerge)
{
    // Excel has three hot-spot traces; the merged run retires from all.
    const auto stats = runWorkload(trace::findWorkload("excel"),
                                   SimConfig::make(Machine::IC), 30000);
    EXPECT_EQ(stats.x86Retired, 3u * 30000u);
}

TEST(Simulator, BlockScopeUnderperformsFrameScope)
{
    // The Figure 9 relation, end to end.
    auto frame_cfg = SimConfig::make(Machine::RPO);
    auto block_cfg = SimConfig::make(Machine::RPO);
    block_cfg.engine.optConfig.scope = opt::Scope::BLOCK;

    const auto &w = trace::findWorkload("vortex");
    const auto frame_run = runWorkload(w, frame_cfg, 120000);
    const auto block_run = runWorkload(w, block_cfg, 120000);
    EXPECT_GT(frame_run.uopReduction(), block_run.uopReduction());
    EXPECT_GE(frame_run.ipc(), block_run.ipc() * 0.98);
}

TEST(Simulator, DisablingReassociationHurtsMemoryOpts)
{
    // §6.4: RA is the gateway optimization — without it, store
    // forwarding and CSE find far fewer symbolically-equal addresses.
    auto all_on = SimConfig::make(Machine::RPO);
    auto no_ra = SimConfig::make(Machine::RPO);
    no_ra.engine.optConfig = opt::OptConfig::without("RA");

    const auto &w = trace::findWorkload("crafty");
    const auto on = runWorkload(w, all_on, 120000);
    const auto off = runWorkload(w, no_ra, 120000);
    EXPECT_GT(on.loadReduction(), off.loadReduction());
    EXPECT_GT(on.uopReduction(), off.uopReduction());
}

TEST(TraceCacheFill, BuildsBoundedTraces)
{
    TraceCacheUnit unit(16384, 3, 32);
    const auto &w = trace::findWorkload("parser");
    const auto prog = w.buildProgram(0);
    x86::Executor exec(prog);
    for (unsigned i = 0; i < 30000; ++i)
        unit.observe(trace::TraceRecord::fromStep(exec.step()));
    EXPECT_GT(unit.cache().numFrames(), 5u);
    // Every built trace respects the caps.
    for (unsigned i = 0; i < 30000; ++i) {
        const auto rec = trace::TraceRecord::fromStep(exec.step());
        if (auto t = unit.lookup(rec.pc)) {
            EXPECT_LE(t->numUops(), 32u);
            unsigned branches = 0;
            for (const opt::FrameUop fu : t->body)
                branches += fu.uop.op == uop::Op::BR ||
                            fu.uop.op == uop::Op::JMPI;
            EXPECT_LE(branches, 3u);
        }
        unit.observe(rec);
    }
}

namespace {

[[noreturn]] void
throwingDeathHandler(const char *, const char *, int, const char *msg)
{
    throw std::runtime_error(msg);
}

} // anonymous namespace

TEST(Runner, EnvOverrideAndDefaults)
{
    EXPECT_GT(defaultInstsPerTrace(), 0u);
}

TEST(Runner, ParseCountAcceptsPlainDecimals)
{
    EXPECT_EQ(parseCount("1", "test"), 1u);
    EXPECT_EQ(parseCount("400000", "test"), 400000u);
    EXPECT_EQ(parseCount("18446744073709551615", "test"),
              UINT64_MAX);
}

TEST(Runner, ParseCountRejectsGarbage)
{
    // Regression: "4e5" used to silently parse as 4 via strtoull with
    // no endptr check, truncating a 400k-instruction request to 4.
    DeathHandler prev = setDeathHandler(throwingDeathHandler);
    EXPECT_THROW(parseCount("4e5", "test"), std::runtime_error);
    EXPECT_THROW(parseCount("400k", "test"), std::runtime_error);
    EXPECT_THROW(parseCount("", "test"), std::runtime_error);
    EXPECT_THROW(parseCount("-4", "test"), std::runtime_error);
    EXPECT_THROW(parseCount("+4", "test"), std::runtime_error);
    EXPECT_THROW(parseCount(" 4", "test"), std::runtime_error);
    EXPECT_THROW(parseCount("0", "test"), std::runtime_error);
    EXPECT_THROW(parseCount("0x10", "test"), std::runtime_error);
    // 2^64 overflows.
    EXPECT_THROW(parseCount("18446744073709551616", "test"),
                 std::runtime_error);
    setDeathHandler(prev);
}

TEST(Runner, EnvInstsParsedStrictly)
{
    std::string saved;
    if (const char *old = getenv("REPLAY_SIM_INSTS"))
        saved = old;

    setenv("REPLAY_SIM_INSTS", "12345", 1);
    EXPECT_EQ(defaultInstsPerTrace(), 12345u);

    DeathHandler prev = setDeathHandler(throwingDeathHandler);
    setenv("REPLAY_SIM_INSTS", "4e5", 1);
    EXPECT_THROW(defaultInstsPerTrace(), std::runtime_error);
    setDeathHandler(prev);

    if (saved.empty())
        unsetenv("REPLAY_SIM_INSTS");
    else
        setenv("REPLAY_SIM_INSTS", saved.c_str(), 1);
    EXPECT_GT(defaultInstsPerTrace(), 0u);
}

#include "trace/tracefile.hh"

TEST(Simulator, FileTraceMatchesLiveTrace)
{
    // Simulating from a written trace file must produce bit-identical
    // results to simulating from the live executor stream.
    const auto &w = trace::findWorkload("twolf");
    const auto prog = w.buildProgram(0);
    const std::string path = ::testing::TempDir() + "twolf.rplt";
    trace::TraceFileWriter::dumpProgram(prog, 80000, path);

    auto cfg = SimConfig::make(Machine::RPO);
    trace::ExecutorTraceSource live(prog, 80000);
    const auto live_stats = simulateTrace(cfg, live, "twolf");

    trace::FileTraceSource filed(path);
    const auto file_stats = simulateTrace(cfg, filed, "twolf");

    EXPECT_EQ(live_stats.cycles(), file_stats.cycles());
    EXPECT_EQ(live_stats.uopsExecuted, file_stats.uopsExecuted);
    EXPECT_EQ(live_stats.frameCommits, file_stats.frameCommits);
    EXPECT_EQ(live_stats.mispredicts, file_stats.mispredicts);
}
