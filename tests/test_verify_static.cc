/**
 * @file
 * Static frame-IR verifier tests: one positive and one negative case
 * per lint invariant and per translation-validation obligation, the
 * optimizer hook integration, and the fault-campaign non-vacuity
 * property — every frame-mutating corruption kind the fault injector
 * can produce is flagged by the static lint.
 */

#include <gtest/gtest.h>

#include "fault/faultinjector.hh"
#include "opt/optimizer.hh"
#include "verify/static/dataflow.hh"
#include "verify/static/hook.hh"
#include "verify/static/lint.hh"
#include "verify/static/passcheck.hh"

using namespace replay;
using namespace replay::vstatic;
using opt::ExitBinding;
using opt::FrameUop;
using opt::Operand;
using opt::OptBuffer;
using opt::OptConfig;
using opt::PassId;
using uop::Op;
using uop::UReg;
using x86::Cond;

namespace {

// ---- terse builders ----------------------------------------------------

uop::Uop
mkAluI(Op op, UReg dst, UReg a, int32_t imm, bool flags = false)
{
    uop::Uop u;
    u.op = op;
    u.dst = dst;
    u.srcA = a;
    u.imm = imm;
    u.writesFlags = flags;
    return u;
}

uop::Uop
mkLimm(UReg dst, int32_t imm)
{
    uop::Uop u;
    u.op = Op::LIMM;
    u.dst = dst;
    u.imm = imm;
    return u;
}

uop::Uop
mkMov(UReg dst, UReg src)
{
    uop::Uop u;
    u.op = Op::MOV;
    u.dst = dst;
    u.srcA = src;
    return u;
}

uop::Uop
mkLoad(UReg dst, UReg base, int32_t disp)
{
    uop::Uop u;
    u.op = Op::LOAD;
    u.dst = dst;
    u.srcA = base;
    u.imm = disp;
    return u;
}

uop::Uop
mkStore(UReg base, int32_t disp, UReg value)
{
    uop::Uop u;
    u.op = Op::STORE;
    u.srcA = base;
    u.srcB = value;
    u.imm = disp;
    return u;
}

uop::Uop
mkCmpI(UReg a, int32_t imm)
{
    uop::Uop u;
    u.op = Op::CMP;
    u.srcA = a;
    u.imm = imm;
    u.writesFlags = true;
    return u;
}

uop::Uop
mkAssert(Cond cc)
{
    uop::Uop u;
    u.op = Op::ASSERT;
    u.cc = cc;
    u.readsFlags = true;
    return u;
}

uop::Uop
mkValueAssert(Cond cc, UReg a, int32_t imm)
{
    uop::Uop u;
    u.op = Op::ASSERT;
    u.cc = cc;
    u.srcA = a;
    u.imm = imm;
    u.valueAssert = true;
    u.assertOp = Op::CMP;
    return u;
}

FrameUop
fu(uop::Uop u, Operand a = {}, Operand b = {}, Operand c = {},
   Operand f = {})
{
    FrameUop x;
    x.uop = u;
    x.srcA = a;
    x.srcB = b;
    x.srcC = c;
    x.flagsSrc = f;
    return x;
}

/** A complete exit binding: every arch-live-out register to its
 *  live-in value, flags to the live-in flags. */
ExitBinding
fullExit()
{
    ExitBinding e;
    for (unsigned r = 0; r < uop::NUM_UREGS; ++r) {
        const auto reg = static_cast<UReg>(r);
        if (reg == UReg::FLAGS) {
            e.regs[r] = Operand::liveIn(UReg::FLAGS);
            continue;
        }
        if (OptBuffer::archLiveOut(reg))
            e.regs[r] = Operand::liveIn(reg);
    }
    e.flags = Operand::liveInFlags();
    return e;
}

bool
hasCheck(const Report &rep, Check check)
{
    for (const Violation &v : rep.violations)
        if (v.check == check)
            return true;
    return false;
}

/** Shorthand for a buffer with one frame-boundary exit. */
OptBuffer
mkBuf(std::vector<FrameUop> uops, ExitBinding exit = fullExit())
{
    OptBuffer buf;
    for (auto &u : uops)
        buf.push(std::move(u));
    buf.addExit(std::move(exit));
    return buf;
}

class AllowAllHints : public opt::AliasHints
{
  public:
    bool
    cleanForSpeculation(uint32_t, uint8_t) const override
    {
        return true;
    }
};

} // namespace

// ---------------------------------------------------------------------
// IR lint: one clean case, one violating case per invariant.
// ---------------------------------------------------------------------

TEST(StaticLint, WellFormedBufferIsClean)
{
    auto exit = fullExit();
    exit.regs[unsigned(UReg::EAX)] = Operand::prod(0);
    const OptBuffer buf = mkBuf(
        {fu(mkAluI(Op::ADD, UReg::EAX, UReg::EAX, 1, true),
            Operand::liveIn(UReg::EAX))},
        exit);
    EXPECT_TRUE(lintBuffer(buf).ok());
}

TEST(StaticLint, ArityLimmWithSourceOperand)
{
    auto u = mkLimm(UReg::EAX, 5);
    u.srcA = UReg::EBX;     // LIMM takes no sources
    const OptBuffer buf =
        mkBuf({fu(u, Operand::liveIn(UReg::EBX))});
    EXPECT_TRUE(hasCheck(lintBuffer(buf), Check::LINT_ARITY));
}

TEST(StaticLint, ArityRenamedArchPresenceMismatch)
{
    // Renamed operand present, architectural field NONE.
    auto u = mkLimm(UReg::EAX, 5);
    const OptBuffer buf =
        mkBuf({fu(u, Operand::liveIn(UReg::EBX))});
    EXPECT_TRUE(hasCheck(lintBuffer(buf), Check::LINT_ARITY));
}

TEST(StaticLint, DefUseForwardReference)
{
    const OptBuffer buf = mkBuf(
        {fu(mkMov(UReg::EAX, UReg::EBX), Operand::prod(1)),
         fu(mkMov(UReg::EBX, UReg::ECX), Operand::liveIn(UReg::ECX))});
    EXPECT_TRUE(hasCheck(lintBuffer(buf), Check::LINT_DEF_USE));
}

TEST(StaticLint, DefUseInvalidatedProducer)
{
    OptBuffer buf = mkBuf(
        {fu(mkLimm(UReg::EAX, 1)),
         fu(mkMov(UReg::EBX, UReg::EAX), Operand::prod(0))});
    buf.at(0).valid = false;
    EXPECT_TRUE(hasCheck(lintBuffer(buf), Check::LINT_DEF_USE));
}

TEST(StaticLint, FlagsReaderWithoutSource)
{
    auto u = mkAssert(Cond::E);     // readsFlags, but flagsSrc empty
    const OptBuffer buf = mkBuf({fu(u)});
    EXPECT_TRUE(hasCheck(lintBuffer(buf), Check::LINT_FLAGS));
}

TEST(StaticLint, FlagsSourceProducerWritesNone)
{
    const OptBuffer buf = mkBuf(
        {fu(mkMov(UReg::EAX, UReg::EBX), Operand::liveIn(UReg::EBX)),
         fu(mkAssert(Cond::E), {}, {}, {}, Operand::prodFlags(0))});
    EXPECT_TRUE(hasCheck(lintBuffer(buf), Check::LINT_FLAGS));
}

TEST(StaticLint, AssertValueFormWithNonComparisonSemantics)
{
    auto u = mkValueAssert(Cond::NE, UReg::EAX, 0xff);
    u.assertOp = Op::ADD;
    const OptBuffer buf =
        mkBuf({fu(u, Operand::liveIn(UReg::EAX))});
    EXPECT_TRUE(hasCheck(lintBuffer(buf), Check::LINT_ASSERT));
}

TEST(StaticLint, ExitBindingMissing)
{
    auto exit = fullExit();
    exit.regs[unsigned(UReg::EAX)] = Operand::none();
    const OptBuffer buf = mkBuf({fu(mkLimm(UReg::EAX, 1))}, exit);
    EXPECT_TRUE(hasCheck(lintBuffer(buf), Check::LINT_EXIT));
}

TEST(StaticLint, ExitBindingDangles)
{
    auto exit = fullExit();
    exit.regs[unsigned(UReg::EAX)] = Operand::prod(0);
    OptBuffer buf = mkBuf({fu(mkLimm(UReg::EAX, 1))}, exit);
    buf.at(0).valid = false;
    EXPECT_TRUE(hasCheck(lintBuffer(buf), Check::LINT_EXIT));
}

TEST(StaticLint, UnsafeMarkOnNonStore)
{
    OptBuffer buf = mkBuf({fu(mkLimm(UReg::EAX, 1))});
    buf.at(0).unsafe = true;
    EXPECT_TRUE(hasCheck(lintBuffer(buf), Check::LINT_UNSAFE));
}

TEST(StaticLint, ControlJmpiNotLast)
{
    uop::Uop jmpi;
    jmpi.op = Op::JMPI;
    jmpi.srcA = UReg::ET2;
    const OptBuffer buf = mkBuf(
        {fu(jmpi, Operand::liveIn(UReg::ET2)),
         fu(mkLimm(UReg::EAX, 1))});
    EXPECT_TRUE(hasCheck(lintBuffer(buf), Check::LINT_CONTROL));
}

TEST(StaticLint, MemInvalidScale)
{
    auto u = mkLoad(UReg::EAX, UReg::ESP, 0);
    u.scale = 3;
    const OptBuffer buf =
        mkBuf({fu(u, Operand::liveIn(UReg::ESP))});
    EXPECT_TRUE(hasCheck(lintBuffer(buf), Check::LINT_MEM));
}

TEST(StaticLint, RegClassIntResultIntoFpRegister)
{
    const OptBuffer buf = mkBuf({fu(mkLimm(UReg::F0, 1))});
    EXPECT_TRUE(hasCheck(lintBuffer(buf), Check::LINT_REG_CLASS));
}

// ---------------------------------------------------------------------
// Frame-level lint: body hash, unsafe list, provenance.
// ---------------------------------------------------------------------

namespace {

/** A deposited frame as the sequencer would build it: body from the
 *  real optimizer, pristine hash anchored. */
core::Frame
depositedFrame()
{
    const std::vector<uop::Uop> uops = {
        mkAluI(Op::ADD, UReg::EAX, UReg::EAX, 7)};
    const std::vector<uint16_t> blocks(uops.size(), 0);
    opt::Optimizer optimizer;
    opt::OptStats stats;
    core::Frame frame;
    frame.body = optimizer.optimize(uops, blocks, nullptr, stats);
    frame.pcs = {0};
    frame.bodyHash = fault::FaultInjector::hashBody(frame.body);
    return frame;
}

} // namespace

TEST(StaticLintFrame, DepositedFrameIsClean)
{
    EXPECT_TRUE(lintFrame(depositedFrame()).ok());
}

TEST(StaticLintFrame, BodyHashAnchorsBitLevelCorruption)
{
    core::Frame frame = depositedFrame();
    // Structurally invisible corruption: an immediate flip.
    frame.body.code.imm[0] ^= 1;
    EXPECT_TRUE(hasCheck(lintFrame(frame), Check::LINT_BODY_HASH));
}

TEST(StaticLintFrame, UnsafeListDisagreement)
{
    core::Frame frame = depositedFrame();
    frame.unsafeStores.push_back({0, 0});   // no unsafe store in body
    EXPECT_TRUE(hasCheck(lintFrame(frame), Check::LINT_UNSAFE_LIST));
}

TEST(StaticLintFrame, ProvenanceOffPath)
{
    core::Frame frame = depositedFrame();
    frame.body.code.x86Pc[0] = 0x1234;  // pcs[0] == 0
    EXPECT_TRUE(hasCheck(lintFrame(frame), Check::LINT_PROVENANCE));
}

// ---------------------------------------------------------------------
// Non-vacuity: every frame-mutating corruption kind the fault injector
// can produce (immediate flip, ADD<->SUB opcode flip, at both the
// fetch and the pass-sabotage site) is flagged by the static lint.
// ---------------------------------------------------------------------

TEST(StaticLintFrame, EveryInjectorCorruptionKindIsFlagged)
{
    const core::Frame pristine = depositedFrame();
    ASSERT_TRUE(lintFrame(pristine).ok());

    uint64_t imm_flips = 0, op_flips = 0;
    for (uint64_t seed = 1; seed <= 64; ++seed) {
        for (const bool fetch_site : {true, false}) {
            core::Frame frame = pristine;
            fault::FaultConfig cfg;
            cfg.seed = seed;
            cfg.fetchFlipRate = fetch_site ? 1.0 : 0.0;
            cfg.passSabotageRate = fetch_site ? 0.0 : 1.0;
            fault::FaultInjector injector(cfg);
            const bool hit =
                fetch_site ? injector.maybeFlipOnFetch(frame.body)
                           : injector.maybeSabotagePass(frame.body);
            ASSERT_TRUE(hit);
            const char *prefix = fetch_site ? "fetch" : "pass";
            imm_flips += injector.stats()
                             .counter(std::string(prefix) + "_imm_flips")
                             .value();
            op_flips += injector.stats()
                            .counter(std::string(prefix) + "_op_flips")
                            .value();
            EXPECT_TRUE(hasCheck(lintFrame(frame),
                                 Check::LINT_BODY_HASH))
                << "seed " << seed << " site " << prefix;
        }
    }
    // Both corruption kinds must actually have been exercised.
    EXPECT_GT(imm_flips, 0u);
    EXPECT_GT(op_flips, 0u);
}

// ---------------------------------------------------------------------
// Per-pass translation validation.
// ---------------------------------------------------------------------

namespace {

const OptConfig kAllOn = OptConfig::allOn();

Report
runCheck(PassId pass, const OptBuffer &before, const OptBuffer &after,
         const OptConfig &cfg = kAllOn,
         const opt::AliasHints *alias = nullptr)
{
    return checkPass(pass, before, after, cfg, alias);
}

} // namespace

TEST(PassCheck, IdentityIsClean)
{
    const OptBuffer buf = mkBuf({fu(mkLimm(UReg::EAX, 1))});
    EXPECT_TRUE(runCheck(PassId::CP, buf, buf).ok());
}

TEST(PassCheck, NopRemovalAccepted)
{
    uop::Uop nop;
    nop.op = Op::NOP;
    const OptBuffer before = mkBuf({fu(nop), fu(mkLimm(UReg::EAX, 1))});
    OptBuffer after = before;
    after.at(0).valid = false;
    EXPECT_TRUE(runCheck(PassId::NOP, before, after).ok());
}

TEST(PassCheck, NopRemovalOfRealOpFlagged)
{
    const OptBuffer before = mkBuf({fu(mkLimm(UReg::EAX, 1))});
    OptBuffer after = before;
    after.at(0).valid = false;
    EXPECT_TRUE(hasCheck(runCheck(PassId::NOP, before, after),
                         Check::PASS_NOP_ONLY));
}

TEST(PassCheck, MetadataMutationFlagged)
{
    const OptBuffer before = mkBuf({fu(mkLimm(UReg::EAX, 1))});
    OptBuffer after = before;
    after.at(0).uop.instIdx = 3;
    EXPECT_TRUE(hasCheck(runCheck(PassId::CP, before, after),
                         Check::PASS_STRUCTURE));
}

TEST(PassCheck, ResurrectedSlotFlagged)
{
    OptBuffer before = mkBuf({fu(mkLimm(UReg::EAX, 1))});
    OptBuffer after = before;
    before.at(0).valid = false;
    EXPECT_TRUE(hasCheck(runCheck(PassId::CP, before, after),
                         Check::PASS_STRUCTURE));
}

TEST(PassCheck, AssertFusionAccepted)
{
    const OptBuffer before = mkBuf(
        {fu(mkCmpI(UReg::EAX, 5), Operand::liveIn(UReg::EAX)),
         fu(mkAssert(Cond::E), {}, {}, {}, Operand::prodFlags(0))});
    OptBuffer after = before;
    after.at(1) =
        fu(mkValueAssert(Cond::E, UReg::EAX, 5),
           Operand::liveIn(UReg::EAX));
    after.at(1).position = before.at(1).position;
    EXPECT_TRUE(runCheck(PassId::ASST, before, after).ok());
}

TEST(PassCheck, AssertFusionWrongConditionFlagged)
{
    const OptBuffer before = mkBuf(
        {fu(mkCmpI(UReg::EAX, 5), Operand::liveIn(UReg::EAX)),
         fu(mkAssert(Cond::E), {}, {}, {}, Operand::prodFlags(0))});
    OptBuffer after = before;
    after.at(1) =
        fu(mkValueAssert(Cond::NE, UReg::EAX, 5),
           Operand::liveIn(UReg::EAX));
    after.at(1).position = before.at(1).position;
    EXPECT_TRUE(hasCheck(runCheck(PassId::ASST, before, after),
                         Check::PASS_ASST_FUSE));
}

TEST(PassCheck, ConstFoldAccepted)
{
    // MOV of a LIMM collapses to the constant itself.
    const OptBuffer before = mkBuf(
        {fu(mkLimm(UReg::EAX, 7)),
         fu(mkMov(UReg::EBX, UReg::EAX), Operand::prod(0))});
    OptBuffer after = before;
    after.at(1) = fu(mkLimm(UReg::EBX, 7));
    after.at(1).position = before.at(1).position;
    EXPECT_TRUE(runCheck(PassId::CP, before, after).ok());
}

TEST(PassCheck, ConstFoldWrongValueFlagged)
{
    const OptBuffer before = mkBuf(
        {fu(mkLimm(UReg::EAX, 7)),
         fu(mkMov(UReg::EBX, UReg::EAX), Operand::prod(0))});
    OptBuffer after = before;
    after.at(1) = fu(mkLimm(UReg::EBX, 8));
    after.at(1).position = before.at(1).position;
    EXPECT_TRUE(hasCheck(runCheck(PassId::CP, before, after),
                         Check::PASS_CP_LATTICE));
}

TEST(PassCheck, ProvablyTrueAssertRemovalAccepted)
{
    const OptBuffer before = mkBuf(
        {fu(mkLimm(UReg::EAX, 5)),
         fu(mkValueAssert(Cond::NE, UReg::EAX, 0xff),
            Operand::prod(0))});
    OptBuffer after = before;
    after.at(1).valid = false;
    EXPECT_TRUE(runCheck(PassId::CP, before, after).ok());
}

TEST(PassCheck, UnprovenAssertRemovalFlagged)
{
    const OptBuffer before = mkBuf(
        {fu(mkValueAssert(Cond::NE, UReg::EAX, 0xff),
            Operand::liveIn(UReg::EAX))});
    OptBuffer after = before;
    after.at(0).valid = false;
    EXPECT_TRUE(hasCheck(runCheck(PassId::CP, before, after),
                         Check::PASS_CP_ASSERT));
}

TEST(PassCheck, ReassocDroppingObservedFlagsFlagged)
{
    auto exit = fullExit();
    exit.flags = Operand::prodFlags(0);
    const OptBuffer before = mkBuf(
        {fu(mkAluI(Op::ADD, UReg::EAX, UReg::EAX, 1, true),
            Operand::liveIn(UReg::EAX))},
        exit);
    OptBuffer after = before;
    after.at(0).uop.writesFlags = false;
    EXPECT_TRUE(hasCheck(runCheck(PassId::RA, before, after),
                         Check::PASS_RA_FLAGS));
}

TEST(PassCheck, CseLoadRemovalAccepted)
{
    auto exit = fullExit();
    exit.regs[unsigned(UReg::EBX)] = Operand::prod(1);
    const OptBuffer before = mkBuf(
        {fu(mkLoad(UReg::EAX, UReg::ESP, 0),
            Operand::liveIn(UReg::ESP)),
         fu(mkLoad(UReg::EBX, UReg::ESP, 0),
            Operand::liveIn(UReg::ESP))},
        exit);
    OptBuffer after = before;
    after.at(1).valid = false;
    after.finalExit().regs[unsigned(UReg::EBX)] = Operand::prod(0);
    EXPECT_TRUE(runCheck(PassId::CSE, before, after).ok());
}

TEST(PassCheck, CseAcrossMayAliasStoreFlagged)
{
    auto exit = fullExit();
    exit.regs[unsigned(UReg::EDX)] = Operand::prod(2);
    const OptBuffer before = mkBuf(
        {fu(mkLoad(UReg::EAX, UReg::ESP, 0),
            Operand::liveIn(UReg::ESP)),
         fu(mkStore(UReg::EBX, 0, UReg::ECX),
            Operand::liveIn(UReg::EBX), Operand::liveIn(UReg::ECX)),
         fu(mkLoad(UReg::EDX, UReg::ESP, 0),
            Operand::liveIn(UReg::ESP))},
        exit);
    OptBuffer after = before;
    after.at(2).valid = false;
    after.finalExit().regs[unsigned(UReg::EDX)] = Operand::prod(0);
    OptConfig cfg = OptConfig::allOn();
    cfg.speculativeMem = false;     // speculation not permitted
    EXPECT_TRUE(hasCheck(runCheck(PassId::CSE, before, after, cfg),
                         Check::PASS_CSE_AVAIL));
}

TEST(PassCheck, StoreForwardAccepted)
{
    auto exit = fullExit();
    exit.regs[unsigned(UReg::EAX)] = Operand::prod(1);
    const OptBuffer before = mkBuf(
        {fu(mkStore(UReg::ESP, -4, UReg::ESI),
            Operand::liveIn(UReg::ESP), Operand::liveIn(UReg::ESI)),
         fu(mkLoad(UReg::EAX, UReg::ESP, -4),
            Operand::liveIn(UReg::ESP))},
        exit);
    OptBuffer after = before;
    after.at(1).valid = false;
    after.finalExit().regs[unsigned(UReg::EAX)] =
        Operand::liveIn(UReg::ESI);
    EXPECT_TRUE(runCheck(PassId::SF, before, after).ok());
}

TEST(PassCheck, StoreForwardAcrossUnmarkedAliasFlagged)
{
    auto exit = fullExit();
    exit.regs[unsigned(UReg::EAX)] = Operand::prod(2);
    const OptBuffer before = mkBuf(
        {fu(mkStore(UReg::ESP, -4, UReg::ESI),
            Operand::liveIn(UReg::ESP), Operand::liveIn(UReg::ESI)),
         fu(mkStore(UReg::EBX, 0, UReg::ECX),
            Operand::liveIn(UReg::EBX), Operand::liveIn(UReg::ECX)),
         fu(mkLoad(UReg::EAX, UReg::ESP, -4),
            Operand::liveIn(UReg::ESP))},
        exit);
    OptBuffer after = before;
    after.at(2).valid = false;
    after.finalExit().regs[unsigned(UReg::EAX)] =
        Operand::liveIn(UReg::ESI);
    // The may-alias store at slot 1 is NOT marked unsafe.
    EXPECT_TRUE(hasCheck(runCheck(PassId::SF, before, after),
                         Check::PASS_SF_ALIAS));
}

TEST(PassCheck, StoreForwardWithUnsafeMarkingAccepted)
{
    AllowAllHints hints;
    auto exit = fullExit();
    exit.regs[unsigned(UReg::EAX)] = Operand::prod(2);
    const OptBuffer before = mkBuf(
        {fu(mkStore(UReg::ESP, -4, UReg::ESI),
            Operand::liveIn(UReg::ESP), Operand::liveIn(UReg::ESI)),
         fu(mkStore(UReg::EBX, 0, UReg::ECX),
            Operand::liveIn(UReg::EBX), Operand::liveIn(UReg::ECX)),
         fu(mkLoad(UReg::EAX, UReg::ESP, -4),
            Operand::liveIn(UReg::ESP))},
        exit);
    OptBuffer after = before;
    after.at(1).unsafe = true;      // speculation obligation met
    after.at(2).valid = false;
    after.finalExit().regs[unsigned(UReg::EAX)] =
        Operand::liveIn(UReg::ESI);
    EXPECT_TRUE(
        runCheck(PassId::SF, before, after, kAllOn, &hints).ok());
}

TEST(PassCheck, IllegalUnsafeTransitionsFlagged)
{
    const OptBuffer base = mkBuf(
        {fu(mkStore(UReg::ESP, -4, UReg::ESI),
            Operand::liveIn(UReg::ESP), Operand::liveIn(UReg::ESI))});

    // unsafe -> safe never happens.
    OptBuffer before = base;
    before.at(0).unsafe = true;
    OptBuffer after = base;
    EXPECT_TRUE(hasCheck(runCheck(PassId::SF, before, after),
                         Check::PASS_UNSAFE_RULE));

    // safe -> unsafe needs an alias profile vouching for the site.
    after = base;
    after.at(0).unsafe = true;
    EXPECT_TRUE(hasCheck(runCheck(PassId::SF, base, after),
                         Check::PASS_UNSAFE_RULE));
}

TEST(PassCheck, DceDeadRemovalAccepted)
{
    const OptBuffer before = mkBuf({fu(mkLimm(UReg::EAX, 1))});
    OptBuffer after = before;
    after.at(0).valid = false;
    EXPECT_TRUE(runCheck(PassId::DCE, before, after).ok());
}

TEST(PassCheck, DceLiveRemovalFlagged)
{
    auto exit = fullExit();
    exit.regs[unsigned(UReg::EAX)] = Operand::prod(0);
    const OptBuffer before =
        mkBuf({fu(mkLimm(UReg::EAX, 1))}, exit);
    OptBuffer after = before;
    after.at(0).valid = false;      // exit still binds prod(0)
    EXPECT_TRUE(hasCheck(runCheck(PassId::DCE, before, after),
                         Check::PASS_DCE_LIVE));
}

TEST(PassCheck, DceRemovingStoreFlagged)
{
    const OptBuffer before = mkBuf(
        {fu(mkStore(UReg::ESP, -4, UReg::ESI),
            Operand::liveIn(UReg::ESP), Operand::liveIn(UReg::ESI))});
    OptBuffer after = before;
    after.at(0).valid = false;
    EXPECT_TRUE(hasCheck(runCheck(PassId::DCE, before, after),
                         Check::PASS_STRUCTURE));
}

TEST(PassCheck, ValueMutationFlagged)
{
    const OptBuffer before = mkBuf(
        {fu(mkAluI(Op::ADD, UReg::EAX, UReg::EAX, 1),
            Operand::liveIn(UReg::EAX))});
    OptBuffer after = before;
    after.at(0).uop.imm = 2;
    EXPECT_TRUE(hasCheck(runCheck(PassId::RA, before, after),
                         Check::PASS_VALUE));
}

// ---------------------------------------------------------------------
// Finalize (cleanup) validation.
// ---------------------------------------------------------------------

TEST(PassCheck, FinalizeCompactionAccepted)
{
    // The real optimizer's finalize must satisfy its own validator.
    const std::vector<uop::Uop> uops = {
        mkAluI(Op::ADD, UReg::EAX, UReg::EAX, 7),
        mkMov(UReg::EBX, UReg::EAX)};
    const std::vector<uint16_t> blocks(uops.size(), 0);
    opt::Optimizer optimizer;
    opt::OptStats stats;
    const auto body = optimizer.optimize(uops, blocks, nullptr, stats);
    EXPECT_TRUE(lintBody(body).ok());
}

TEST(PassCheck, FinalizeMisdirectedOperandFlagged)
{
    auto exit = fullExit();
    exit.regs[unsigned(UReg::EBX)] = Operand::prod(2);
    OptBuffer before = mkBuf(
        {fu(mkLimm(UReg::EAX, 1)),
         fu(mkLimm(UReg::ECX, 2)),
         fu(mkMov(UReg::EBX, UReg::EAX), Operand::prod(0))},
        exit);
    before.at(1).valid = false;     // dropped by compaction

    opt::OptimizedFrame out;
    out.push(before.at(0));
    FrameUop mov = before.at(2);
    mov.srcA = Operand::prod(1);    // should compact 2 -> 1... of slot 0
    out.push(mov);
    out.exit = exit;
    for (unsigned r = 0; r < uop::NUM_UREGS; ++r) {
        if (!OptBuffer::archLiveOut(static_cast<UReg>(r)))
            out.exit.regs[r] = Operand::none();
    }
    out.exit.regs[unsigned(UReg::EBX)] = Operand::prod(1);

    // The operand now points at the MOV itself, not the LIMM.
    Report rep = checkFinalize(before, out);
    // Correct mapping would be prod(0) for the MOV's source.
    EXPECT_FALSE(rep.ok());
}

// ---------------------------------------------------------------------
// Lattice-backed acceptances: rewrites only the constant lattice can
// justify (linear forms cannot express AND/OR chains).  Each is a
// false-positive class observed on real fuzz programs.
// ---------------------------------------------------------------------

TEST(PassCheck, CpAddressFoldToAbsoluteAccepted)
{
    // [ESI + idx] with ESI = 0x1000 and idx = AND(0, 0xffc) = 0 folds
    // to the absolute [0x1000]; the index chain has no linear form, so
    // only the lattice proves the two addresses equal.
    auto exit = fullExit();
    exit.regs[unsigned(UReg::EDX)] = Operand::prod(3);
    auto ld = mkLoad(UReg::EDX, UReg::ESI, 0);
    ld.srcB = UReg::EBX;
    const OptBuffer before = mkBuf(
        {fu(mkLimm(UReg::ESI, 0x1000)),
         fu(mkLimm(UReg::ECX, 0)),
         fu(mkAluI(Op::AND, UReg::EBX, UReg::ECX, 0xffc),
            Operand::prod(1)),
         fu(ld, Operand::prod(0), Operand::prod(2))},
        exit);
    OptBuffer after = before;
    after.at(3) = fu(mkLoad(UReg::EDX, UReg::NONE, 0x1000));
    after.at(3).position = before.at(3).position;
    EXPECT_TRUE(runCheck(PassId::CP, before, after).ok());
}

TEST(PassCheck, CpAddressFoldToWrongAbsoluteFlagged)
{
    auto exit = fullExit();
    exit.regs[unsigned(UReg::EDX)] = Operand::prod(3);
    auto ld = mkLoad(UReg::EDX, UReg::ESI, 0);
    ld.srcB = UReg::EBX;
    const OptBuffer before = mkBuf(
        {fu(mkLimm(UReg::ESI, 0x1000)),
         fu(mkLimm(UReg::ECX, 0)),
         fu(mkAluI(Op::AND, UReg::EBX, UReg::ECX, 0xffc),
            Operand::prod(1)),
         fu(ld, Operand::prod(0), Operand::prod(2))},
        exit);
    OptBuffer after = before;
    after.at(3) = fu(mkLoad(UReg::EDX, UReg::NONE, 0x1004));
    after.at(3).position = before.at(3).position;
    EXPECT_FALSE(runCheck(PassId::CP, before, after).ok());
}

TEST(PassCheck, IdentityCollapseToCopyAccepted)
{
    // OR of a lattice-proven zero with a live-in collapses to a plain
    // copy of the live-in (the zero flows through an AND, so neither
    // structural match nor linear forms can discharge it).
    auto exit = fullExit();
    exit.regs[unsigned(UReg::EBX)] = Operand::prod(2);
    uop::Uop orU;
    orU.op = Op::OR;
    orU.dst = UReg::EBX;
    orU.srcA = UReg::EDX;
    orU.srcB = UReg::EAX;
    orU.writesFlags = true;
    const OptBuffer before = mkBuf(
        {fu(mkLimm(UReg::ECX, 5)),
         fu(mkAluI(Op::AND, UReg::EDX, UReg::ECX, 0), Operand::prod(0)),
         fu(orU, Operand::prod(1), Operand::liveIn(UReg::EAX))},
        exit);
    OptBuffer after = before;
    after.at(2) = fu(mkMov(UReg::EBX, UReg::EAX),
                     Operand::liveIn(UReg::EAX));
    after.at(2).position = before.at(2).position;
    EXPECT_TRUE(runCheck(PassId::CP, before, after).ok());
}

TEST(PassCheck, IdentityCollapseToWrongOperandFlagged)
{
    auto exit = fullExit();
    exit.regs[unsigned(UReg::EBX)] = Operand::prod(2);
    uop::Uop orU;
    orU.op = Op::OR;
    orU.dst = UReg::EBX;
    orU.srcA = UReg::EDX;
    orU.srcB = UReg::EAX;
    orU.writesFlags = true;
    const OptBuffer before = mkBuf(
        {fu(mkLimm(UReg::ECX, 5)),
         fu(mkAluI(Op::AND, UReg::EDX, UReg::ECX, 0), Operand::prod(0)),
         fu(orU, Operand::prod(1), Operand::liveIn(UReg::EAX))},
        exit);
    OptBuffer after = before;
    // Copies the zero side instead of the surviving value.
    after.at(2) = fu(mkMov(UReg::EBX, UReg::EDX), Operand::prod(1));
    after.at(2).position = before.at(2).position;
    EXPECT_FALSE(runCheck(PassId::CP, before, after).ok());
}

TEST(PassCheck, CseAcrossCongruentDisjointStoreAccepted)
{
    // The intervening store indexes with a *congruent* (textually
    // different) copy of the load's index chain; disjoint literal
    // displacements then prove no clobber, as the pass itself saw
    // after its same-sweep redirects.
    auto exit = fullExit();
    exit.regs[unsigned(UReg::EDX)] = Operand::prod(4);
    auto ld1 = mkLoad(UReg::EAX, UReg::ESI, 0);
    ld1.srcB = UReg::EBX;
    auto ld2 = mkLoad(UReg::EDX, UReg::ESI, 0);
    ld2.srcB = UReg::EBX;
    uop::Uop st;
    st.op = Op::STORE;
    st.srcA = UReg::ESI;
    st.srcB = UReg::EDI;
    st.srcC = UReg::EDX;
    st.imm = 0x10;
    const OptBuffer before = mkBuf(
        {fu(mkAluI(Op::AND, UReg::EBX, UReg::ECX, 0xffc),
            Operand::liveIn(UReg::ECX)),
         fu(ld1, Operand::liveIn(UReg::ESI), Operand::prod(0)),
         fu(mkAluI(Op::AND, UReg::EDX, UReg::ECX, 0xffc),
            Operand::liveIn(UReg::ECX)),
         fu(st, Operand::liveIn(UReg::ESI),
            Operand::liveIn(UReg::EDI), Operand::prod(2)),
         fu(ld2, Operand::liveIn(UReg::ESI), Operand::prod(0))},
        exit);
    OptBuffer after = before;
    after.at(4).valid = false;
    after.finalExit().regs[unsigned(UReg::EDX)] = Operand::prod(1);
    EXPECT_TRUE(runCheck(PassId::CSE, before, after).ok());
}

TEST(PassCheck, CseAcrossCongruentOverlappingStoreFlagged)
{
    auto exit = fullExit();
    exit.regs[unsigned(UReg::EDX)] = Operand::prod(4);
    auto ld1 = mkLoad(UReg::EAX, UReg::ESI, 0);
    ld1.srcB = UReg::EBX;
    auto ld2 = mkLoad(UReg::EDX, UReg::ESI, 0);
    ld2.srcB = UReg::EBX;
    uop::Uop st;
    st.op = Op::STORE;
    st.srcA = UReg::ESI;
    st.srcB = UReg::EDI;
    st.srcC = UReg::EDX;
    st.imm = 0x2;       // overlaps [0,4) — a real clobber hazard
    const OptBuffer before = mkBuf(
        {fu(mkAluI(Op::AND, UReg::EBX, UReg::ECX, 0xffc),
            Operand::liveIn(UReg::ECX)),
         fu(ld1, Operand::liveIn(UReg::ESI), Operand::prod(0)),
         fu(mkAluI(Op::AND, UReg::EDX, UReg::ECX, 0xffc),
            Operand::liveIn(UReg::ECX)),
         fu(st, Operand::liveIn(UReg::ESI),
            Operand::liveIn(UReg::EDI), Operand::prod(2)),
         fu(ld2, Operand::liveIn(UReg::ESI), Operand::prod(0))},
        exit);
    OptBuffer after = before;
    after.at(4).valid = false;
    after.finalExit().regs[unsigned(UReg::EDX)] = Operand::prod(1);
    EXPECT_TRUE(hasCheck(runCheck(PassId::CSE, before, after),
                         Check::PASS_CSE_AVAIL));
}

// ---------------------------------------------------------------------
// Optimizer hook integration.
// ---------------------------------------------------------------------

TEST(StaticHook, CountingCheckerValidatesRealOptimizer)
{
    staticCheckStats().reset();
    installStaticChecker(Action::COUNT);
    ASSERT_TRUE(staticCheckerInstalled());

    const std::vector<uop::Uop> uops = {
        mkStore(UReg::ESP, -4, UReg::ESI),
        mkCmpI(UReg::EAX, 5),
        mkAssert(Cond::NE),
        mkLoad(UReg::EBX, UReg::ESP, -4),
        mkAluI(Op::ADD, UReg::EBX, UReg::EBX, 3, true)};
    const std::vector<uint16_t> blocks(uops.size(), 0);
    opt::Optimizer optimizer;
    opt::OptStats stats;
    const auto body = optimizer.optimize(uops, blocks, nullptr, stats);
    (void)body;

    const auto &s = staticCheckStats();
    EXPECT_EQ(s.framesChecked.load(), 1u);
    EXPECT_GT(s.passesChecked.load(), 0u);
    EXPECT_EQ(s.violations(), 0u);

    uninstallStaticChecker();
    EXPECT_FALSE(staticCheckerInstalled());
}
