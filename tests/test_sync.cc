/**
 * @file
 * The capability-annotated synchronization layer (util/sync.hh): the
 * ranked lock-hierarchy checker's PANIC paths (via the death-test
 * hook), CondVar wait/predicate semantics, SharedMutex reader/writer
 * exclusion, Role single-owner enforcement, and a multi-thread stress
 * of the wrappers that the tier-1 TSan stage re-runs under
 * ThreadSanitizer.
 *
 * The hierarchy tests skip themselves when the checker is compiled
 * out (Release builds): there the wrappers are plain std primitives
 * by design, and the violation would deadlock instead of panicking.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "util/logging.hh"
#include "util/sync.hh"

using namespace replay;

namespace {

struct DeathInfo
{
    std::string kind;
    std::string message;
};

DeathInfo lastDeath;

[[noreturn]] void
throwingHandler(const char *kind, const char *, int,
                const char *message)
{
    lastDeath = {kind, message};
    throw std::runtime_error(message);
}

/** RAII death-hook installer so a failing EXPECT cannot leak it. */
struct DeathScope
{
    DeathHandler prev;
    DeathScope() : prev(setDeathHandler(throwingHandler)) {}
    ~DeathScope() { setDeathHandler(prev); }
};

/** Spin until @p flag or a generous deadline (never flaky-fast). */
bool
spinUntil(const std::atomic<bool> &flag)
{
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (!flag.load(std::memory_order_acquire)) {
        if (std::chrono::steady_clock::now() > deadline)
            return false;
        std::this_thread::yield();
    }
    return true;
}

} // anonymous namespace

// ---------------------------------------------------------------------
// Hierarchy checker: ordering violations PANIC with both sites
// ---------------------------------------------------------------------

TEST(SyncHierarchy, InOrderAcquisitionIsQuiet)
{
    sync::Mutex lo{"lo", 10};
    sync::Mutex hi{"hi", 20};
    DeathScope death;
    {
        sync::LockGuard a(lo);
        sync::LockGuard b(hi);
        EXPECT_EQ(sync::heldCapabilities(),
                  sync::hierarchyChecked() ? 2u : 0u);
    }
    EXPECT_EQ(sync::heldCapabilities(), 0u);
}

TEST(SyncHierarchy, OutOfOrderAcquisitionPanicsWithBothSites)
{
    if (!sync::hierarchyChecked())
        GTEST_SKIP() << "hierarchy checker compiled out (Release)";
    sync::Mutex lo{"engine_rank", sync::rank::ENGINE};
    sync::Mutex hi{"governor_rank", sync::rank::GOVERNOR};
    DeathScope death;
    hi.lock();
    // The deliberately inverted acquisition: governor-ranked lock
    // held, engine-ranked requested — the deadlock shape the checker
    // exists to catch.
    EXPECT_THROW(lo.lock(), std::runtime_error);
    hi.unlock();
    EXPECT_EQ(lastDeath.kind, "panic");
    // Both capabilities and both acquisition sites are in the report.
    EXPECT_NE(lastDeath.message.find("engine_rank"), std::string::npos);
    EXPECT_NE(lastDeath.message.find("governor_rank"),
              std::string::npos);
    EXPECT_NE(lastDeath.message.find("test_sync.cc"), std::string::npos);
    EXPECT_EQ(sync::heldCapabilities(), 0u);
}

TEST(SyncHierarchy, SameRankNestingPanics)
{
    if (!sync::hierarchyChecked())
        GTEST_SKIP() << "hierarchy checker compiled out (Release)";
    sync::Mutex a{"leaf_a"};    // both default to rank::LEAF
    sync::Mutex b{"leaf_b"};
    DeathScope death;
    a.lock();
    EXPECT_THROW(b.lock(), std::runtime_error);
    a.unlock();
    EXPECT_NE(lastDeath.message.find("leaf_a"), std::string::npos);
    EXPECT_NE(lastDeath.message.find("leaf_b"), std::string::npos);
}

TEST(SyncHierarchy, OutOfOrderReleaseIsLegal)
{
    sync::Mutex a{"a", 10};
    sync::Mutex b{"b", 20};
    a.lock();
    b.lock();
    a.unlock();     // release order need not mirror acquisition
    b.unlock();
    EXPECT_EQ(sync::heldCapabilities(), 0u);
}

TEST(SyncHierarchy, TryLockSuccessObeysTheHierarchy)
{
    if (!sync::hierarchyChecked())
        GTEST_SKIP() << "hierarchy checker compiled out (Release)";
    sync::Mutex lo{"try_lo", 10};
    sync::Mutex hi{"try_hi", 20};
    DeathScope death;
    hi.lock();
    // try_lock is not an ordering escape hatch: the successful
    // acquisition trips the same check.
    EXPECT_THROW(lo.try_lock(), std::runtime_error);
    hi.unlock();
}

TEST(SyncHierarchy, ReleasingAnUnheldCapabilityPanics)
{
    if (!sync::hierarchyChecked())
        GTEST_SKIP() << "hierarchy checker compiled out (Release)";
    sync::Mutex mu{"never_held", 10};
    DeathScope death;
    EXPECT_THROW(mu.unlock(), std::runtime_error);
    EXPECT_NE(lastDeath.message.find("never_held"), std::string::npos);
}

TEST(SyncHierarchy, ReportRankIsReachableFromUnderAnyLock)
{
    // warn() takes the report mutex (rank REPORT, the maximum): it
    // must be legal from under every other capability, or a panic
    // under lock would recurse into its own violation.
    sync::Mutex mu{"holder", sync::rank::LEAF};
    sync::LockGuard hold(mu);
    warn("sync test: reporting from under a LEAF lock is in order");
}

// ---------------------------------------------------------------------
// Role: exclusive sequential ownership
// ---------------------------------------------------------------------

TEST(SyncRole, RecursiveAcquisitionPanics)
{
    if (!sync::hierarchyChecked())
        GTEST_SKIP() << "hierarchy checker compiled out (Release)";
    sync::Role role{"engine_role", sync::rank::ENGINE};
    DeathScope death;
    role.acquire();
    // Re-entry trips the same-rank rule — the shape a governor
    // alloc-failure hook calling back into the governor would take.
    EXPECT_THROW(role.acquire(), std::runtime_error);
    role.release();
    EXPECT_NE(lastDeath.message.find("engine_role"), std::string::npos);
}

TEST(SyncRole, CrossThreadOverlapPanicsOnTheSecondThread)
{
    if (!sync::hierarchyChecked())
        GTEST_SKIP() << "hierarchy checker compiled out (Release)";
    sync::Role role{"session_role", sync::rank::ENGINE};
    DeathScope death;
    role.acquire();
    std::atomic<bool> caught{false};
    std::thread intruder([&] {
        try {
            role.acquire();
            role.release();     // not reached
        } catch (const std::runtime_error &) {
            caught.store(true, std::memory_order_release);
        }
    });
    intruder.join();
    role.release();
    EXPECT_TRUE(caught.load());
    EXPECT_NE(lastDeath.message.find("session_role"),
              std::string::npos);
    // The owner's hold is intact: re-acquire after release works.
    role.acquire();
    role.release();
}

TEST(SyncRole, GuardComposesWithRankedMutexes)
{
    sync::Role engine{"engine", sync::rank::ENGINE};
    sync::Mutex queue{"queue", sync::rank::BGQUEUE};
    {
        sync::RoleGuard hold(engine);
        sync::LockGuard lock(queue);   // 10 -> 30: in order
        EXPECT_EQ(sync::heldCapabilities(),
                  sync::hierarchyChecked() ? 2u : 0u);
    }
    EXPECT_EQ(sync::heldCapabilities(), 0u);
}

// ---------------------------------------------------------------------
// CondVar semantics
// ---------------------------------------------------------------------

TEST(SyncCondVar, PredicateWaitObservesNotification)
{
    sync::Mutex mu{"cv_mutex"};
    sync::CondVar cv;
    bool ready = false;
    std::atomic<bool> consumed{false};

    std::thread consumer([&] {
        sync::UniqueLock lock(mu);
        cv.wait(lock, [&] { return ready; });
        EXPECT_TRUE(ready);
        consumed.store(true, std::memory_order_release);
    });
    {
        sync::LockGuard lock(mu);
        ready = true;
    }
    cv.notify_one();
    consumer.join();
    EXPECT_TRUE(consumed.load());
}

TEST(SyncCondVar, ManualWaitLoopHandlesSpuriousWakeups)
{
    sync::Mutex mu{"cv_mutex"};
    sync::CondVar cv;
    int stage = 0;
    std::atomic<bool> sawFinal{false};

    std::thread consumer([&] {
        sync::UniqueLock lock(mu);
        while (stage < 2)
            cv.wait(lock);
        sawFinal.store(true, std::memory_order_release);
    });
    // Two notifications; only the second satisfies the predicate, so
    // the manual loop must re-check and keep waiting in between.
    for (int i = 0; i < 2; ++i) {
        {
            sync::LockGuard lock(mu);
            ++stage;
        }
        cv.notify_all();
    }
    consumer.join();
    EXPECT_TRUE(sawFinal.load());
}

TEST(SyncCondVar, WaitOnUnlockedLockPanics)
{
    sync::Mutex mu{"cv_mutex"};
    sync::CondVar cv;
    DeathScope death;
    sync::UniqueLock lock(mu);
    lock.unlock();
    EXPECT_THROW(cv.wait(lock), std::runtime_error);
}

TEST(SyncUniqueLock, ManualLockUnlockTracksOwnership)
{
    sync::Mutex mu{"manual"};
    sync::UniqueLock lock(mu);
    EXPECT_TRUE(lock.ownsLock());
    lock.unlock();
    EXPECT_FALSE(lock.ownsLock());
    lock.lock();
    EXPECT_TRUE(lock.ownsLock());
    EXPECT_EQ(lock.mutex(), &mu);
}

// ---------------------------------------------------------------------
// SharedMutex reader/writer exclusion
// ---------------------------------------------------------------------

TEST(SyncSharedMutex, ReadersShareWritersExclude)
{
    sync::SharedMutex mu{"rw"};
    std::atomic<int> readersInside{0};
    std::atomic<bool> bothSeen{false};
    std::atomic<bool> release{false};

    auto reader = [&] {
        sync::ReadLockGuard lock(mu);
        readersInside.fetch_add(1, std::memory_order_acq_rel);
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::seconds(30);
        // Hold until both readers are inside simultaneously — proof
        // that shared acquisition really is shared.
        while (!bothSeen.load(std::memory_order_acquire) &&
               std::chrono::steady_clock::now() < deadline) {
            if (readersInside.load(std::memory_order_acquire) == 2)
                bothSeen.store(true, std::memory_order_release);
            std::this_thread::yield();
        }
        readersInside.fetch_sub(1, std::memory_order_acq_rel);
    };
    std::thread r1(reader), r2(reader);
    r1.join();
    r2.join();
    EXPECT_TRUE(bothSeen.load());

    // Writer excludes readers: with the writer inside, a late reader
    // must observe the writer's completed state, never a torn one.
    int shared_value = 0;
    std::atomic<bool> writerIn{false};
    std::thread writer([&] {
        sync::WriteLockGuard lock(mu);
        writerIn.store(true, std::memory_order_release);
        shared_value = 1;
        while (!release.load(std::memory_order_acquire))
            std::this_thread::yield();
        shared_value = 2;
    });
    ASSERT_TRUE(spinUntil(writerIn));
    release.store(true, std::memory_order_release);
    {
        sync::ReadLockGuard lock(mu);
        // The reader can only get in after the writer fully finished.
        EXPECT_EQ(shared_value, 2);
    }
    writer.join();
}

TEST(SyncSharedMutex, SharedAcquisitionObeysTheHierarchy)
{
    if (!sync::hierarchyChecked())
        GTEST_SKIP() << "hierarchy checker compiled out (Release)";
    sync::SharedMutex lo{"shared_lo", 10};
    sync::Mutex hi{"plain_hi", 20};
    DeathScope death;
    hi.lock();
    EXPECT_THROW(lo.lock_shared(), std::runtime_error);
    hi.unlock();
}

// ---------------------------------------------------------------------
// Stress (re-run under TSan by the tier-1 sync stage)
// ---------------------------------------------------------------------

TEST(SyncStress, MutexCondVarSharedMutexHammer)
{
    constexpr int THREADS = 8;
    constexpr int ITERS = 2000;

    sync::Mutex mu{"stress_mutex", 10};
    sync::SharedMutex rw{"stress_rw", 20};
    sync::CondVar cv;
    long counter = 0;           // guarded by mu
    long rwCounter = 0;         // guarded by rw

    std::vector<std::thread> threads;
    threads.reserve(THREADS);
    for (int t = 0; t < THREADS; ++t) {
        threads.emplace_back([&, t] {
            for (int i = 0; i < ITERS; ++i) {
                {
                    sync::LockGuard lock(mu);
                    ++counter;
                }
                if (t % 2 == 0) {
                    sync::WriteLockGuard lock(rw);
                    ++rwCounter;
                } else {
                    // Readers verify a non-torn value; 10 -> 20 also
                    // exercises in-order nesting under load.
                    sync::LockGuard outer(mu);
                    sync::ReadLockGuard lock(rw);
                    EXPECT_GE(rwCounter, 0);
                }
                // try_lock under contention may fail; fall back to a
                // blocking acquisition so the final count stays exact.
                if (!mu.try_lock())
                    mu.lock();
                ++counter;
                mu.unlock();
            }
            cv.notify_all();
        });
    }
    for (auto &th : threads)
        th.join();

    sync::LockGuard lock(mu);
    EXPECT_EQ(counter, long(THREADS) * ITERS * 2);
    EXPECT_EQ(rwCounter, long(THREADS / 2) * ITERS);
}
