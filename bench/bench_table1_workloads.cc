/**
 * @file
 * Table 1: the experimental workload set — application type, paper
 * trace length, number of hot-spot traces, plus measured properties of
 * our synthesized stand-ins (code footprint, micro-op ratio).  The
 * per-workload decode measurements are independent, so they run across
 * the thread pool into indexed slots.
 */

#include "common.hh"

#include "uop/translator.hh"
#include "util/threadpool.hh"
#include "x86/executor.hh"

using namespace replay;

int
main()
{
    bench::banner("Table 1: Experimental Workload",
                  "Table 1, and the 1.4 uop/x86 ratio of Section 5.1.1");

    const auto &workloads = trace::standardWorkloads();

    struct Row
    {
        uint64_t codeBytes = 0;
        double ratio = 0;
    };
    std::vector<Row> rows(workloads.size());
    parallelFor(sim::defaultSweepJobs(), workloads.size(), [&](size_t i) {
        const auto prog = workloads[i].buildProgram(0);
        x86::Executor exec(prog);
        uop::Translator trans;
        uint64_t x86n = 0, uopn = 0;
        std::vector<uop::Uop> flow;
        for (unsigned step = 0; step < 30000; ++step) {
            const auto info = exec.step();
            flow.clear();
            trans.translate(info.placed->inst, info.pc,
                            info.pc + info.placed->length, flow);
            ++x86n;
            uopn += flow.size();
        }
        rows[i] = Row{prog.codeBytes(), double(uopn) / double(x86n)};
    });

    TextTable table;
    table.header({"Name", "Type", "Total x86 Insts.", "Traces",
                  "code bytes", "uops/x86"});
    double total_ratio = 0;
    for (size_t i = 0; i < workloads.size(); ++i) {
        const auto &w = workloads[i];
        total_ratio += rows[i].ratio;
        table.row({w.name, trace::appTypeName(w.type),
                   std::to_string(w.paperInsts / 1000000) + "M",
                   std::to_string(w.numTraces),
                   std::to_string(rows[i].codeBytes),
                   TextTable::fixed(rows[i].ratio, 2)});
    }
    table.separator();
    table.row({"average", "", "", "", "",
               TextTable::fixed(total_ratio / double(workloads.size()),
                                2)});
    std::printf("%s\n", table.render().c_str());
    return 0;
}
