/**
 * @file
 * Table 1: the experimental workload set — application type, paper
 * trace length, number of hot-spot traces, plus measured properties of
 * our synthesized stand-ins (code footprint, micro-op ratio).
 */

#include "common.hh"

#include "uop/translator.hh"
#include "x86/executor.hh"

using namespace replay;

int
main()
{
    bench::banner("Table 1: Experimental Workload",
                  "Table 1, and the 1.4 uop/x86 ratio of Section 5.1.1");

    TextTable table;
    table.header({"Name", "Type", "Total x86 Insts.", "Traces",
                  "code bytes", "uops/x86"});

    double total_ratio = 0;
    for (const auto &w : trace::standardWorkloads()) {
        const auto prog = w.buildProgram(0);
        x86::Executor exec(prog);
        uop::Translator trans;
        uint64_t x86n = 0, uopn = 0;
        std::vector<uop::Uop> flow;
        for (unsigned i = 0; i < 30000; ++i) {
            const auto info = exec.step();
            flow.clear();
            trans.translate(info.placed->inst, info.pc,
                            info.pc + info.placed->length, flow);
            ++x86n;
            uopn += flow.size();
        }
        const double ratio = double(uopn) / double(x86n);
        total_ratio += ratio;
        table.row({w.name, trace::appTypeName(w.type),
                   std::to_string(w.paperInsts / 1000000) + "M",
                   std::to_string(w.numTraces),
                   std::to_string(prog.codeBytes()),
                   TextTable::fixed(ratio, 2)});
    }
    table.separator();
    table.row({"average", "", "", "", "",
               TextTable::fixed(total_ratio / 14.0, 2)});
    std::printf("%s\n", table.render().c_str());
    return 0;
}
