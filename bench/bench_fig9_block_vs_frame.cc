/**
 * @file
 * Figure 9: percent IPC increase (over plain rePLay) when frames are
 * optimized only within their constituent basic blocks, versus when
 * the whole frame is optimized as a unit.
 */

#include "common.hh"

using namespace replay;

int
main()
{
    bench::banner("Figure 9: block-scope vs frame-scope optimization",
                  "Figure 9 / Section 6.3");

    auto block_cfg = sim::SimConfig::make(sim::Machine::RPO);
    block_cfg.engine.optConfig.scope = opt::Scope::BLOCK;

    bench::Grid grid;
    grid.rows = sim::standardWorkloadRows();
    grid.cols = {{"RP", sim::SimConfig::make(sim::Machine::RP)},
                 {"block", block_cfg},
                 {"frame", sim::SimConfig::make(sim::Machine::RPO)}};
    grid.run();

    TextTable table;
    table.header({"app", "Block", "Frame", "block uopRed",
                  "frame uopRed"});
    for (size_t r = 0; r < grid.rows.size(); ++r) {
        const auto &rp = grid.at(r, 0);
        const auto &block = grid.at(r, 1);
        const auto &frame = grid.at(r, 2);
        table.row({grid.rows[r]->name,
                   TextTable::percent(block.ipc() / rp.ipc() - 1, 1),
                   TextTable::percent(frame.ipc() / rp.ipc() - 1, 1),
                   TextTable::percent(block.uopReduction(), 0),
                   TextTable::percent(frame.uopReduction(), 0)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("paper: block-level optimization offers some benefit, "
                "frame-level substantially more;\n"
                "block-level can even lose to plain rePLay when the "
                "optimization latency outweighs it.\n\n");
    bench::throughputFooter(grid.result);
    return 0;
}
