/**
 * @file
 * Figure 9: percent IPC increase (over plain rePLay) when frames are
 * optimized only within their constituent basic blocks, versus when
 * the whole frame is optimized as a unit.
 */

#include "common.hh"

using namespace replay;

int
main()
{
    bench::banner("Figure 9: block-scope vs frame-scope optimization",
                  "Figure 9 / Section 6.3");

    TextTable table;
    table.header({"app", "Block", "Frame", "block uopRed",
                  "frame uopRed"});
    for (const auto &w : trace::standardWorkloads()) {
        const auto rp =
            sim::runWorkload(w, sim::SimConfig::make(sim::Machine::RP));

        auto block_cfg = sim::SimConfig::make(sim::Machine::RPO);
        block_cfg.engine.optConfig.scope = opt::Scope::BLOCK;
        const auto block = sim::runWorkload(w, block_cfg);

        const auto frame =
            sim::runWorkload(w, sim::SimConfig::make(sim::Machine::RPO));

        table.row({w.name,
                   TextTable::percent(block.ipc() / rp.ipc() - 1, 1),
                   TextTable::percent(frame.ipc() / rp.ipc() - 1, 1),
                   TextTable::percent(block.uopReduction(), 0),
                   TextTable::percent(frame.uopReduction(), 0)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("paper: block-level optimization offers some benefit, "
                "frame-level substantially more;\n"
                "block-level can even lose to plain rePLay when the "
                "optimization latency outweighs it.\n\n");
    return 0;
}
