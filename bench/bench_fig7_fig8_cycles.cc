/**
 * @file
 * Figures 7 and 8: per-benchmark execution cycles for the RP and RPO
 * configurations, each cycle classified by the fetch event of that
 * cycle (assert / mispredict / miss / stall / wait / frame / icache).
 * Figure 7 covers the SPECint applications, Figure 8 the desktop ones.
 */

#include "common.hh"

using namespace replay;
using timing::CycleBin;

namespace {

void
emitGroup(const char *title, const bench::Grid &grid,
          trace::AppType first, trace::AppType second)
{
    std::printf("%s\n", title);
    TextTable table;
    table.header({"app", "cfg", "cycles", "frame", "wait", "stall",
                  "miss", "assert", "mispred", "icache"});
    for (size_t row = 0; row < grid.rows.size(); ++row) {
        const auto &w = *grid.rows[row];
        if (w.type != first && w.type != second)
            continue;
        for (size_t col = 0; col < grid.cols.size(); ++col) {
            const auto &r = grid.at(row, col);
            auto pct = [&](CycleBin bin) {
                return TextTable::percent(
                    double(r.bins.get(bin)) / double(r.cycles()), 1);
            };
            table.row({w.name, r.config, std::to_string(r.cycles()),
                       pct(CycleBin::FRAME), pct(CycleBin::WAIT),
                       pct(CycleBin::STALL), pct(CycleBin::MISS),
                       pct(CycleBin::ASSERT), pct(CycleBin::MISPRED),
                       pct(CycleBin::ICACHE)});
        }
    }
    std::printf("%s\n", table.render().c_str());
}

} // namespace

int
main()
{
    bench::banner("Figures 7+8: cycle breakdown, RP vs RPO",
                  "Figures 7 and 8 / Section 6.1");

    bench::Grid grid;
    grid.rows = sim::standardWorkloadRows();
    grid.cols = {{"RP", sim::SimConfig::make(sim::Machine::RP)},
                 {"RPO", sim::SimConfig::make(sim::Machine::RPO)}};
    grid.run();

    emitGroup("Figure 7 (SPECint):", grid, trace::AppType::SPECint,
              trace::AppType::SPECint);
    emitGroup("Figure 8 (desktop):", grid, trace::AppType::Business,
              trace::AppType::Content);
    std::printf("paper: the optimizer's main impact is a ~21%% net "
                "reduction in Frame cycles; assert cycles stay small.\n\n");
    bench::throughputFooter(grid.result);
    return 0;
}
