/**
 * @file
 * Figures 7 and 8: per-benchmark execution cycles for the RP and RPO
 * configurations, each cycle classified by the fetch event of that
 * cycle (assert / mispredict / miss / stall / wait / frame / icache).
 * Figure 7 covers the SPECint applications, Figure 8 the desktop ones.
 */

#include "common.hh"

using namespace replay;
using timing::CycleBin;

namespace {

void
emitGroup(const char *title, trace::AppType first,
          trace::AppType second)
{
    std::printf("%s\n", title);
    TextTable table;
    table.header({"app", "cfg", "cycles", "frame", "wait", "stall",
                  "miss", "assert", "mispred", "icache"});
    for (const auto &w : trace::standardWorkloads()) {
        if (w.type != first && w.type != second)
            continue;
        for (const auto machine : {sim::Machine::RP, sim::Machine::RPO}) {
            const auto r = sim::runWorkload(
                w, sim::SimConfig::make(machine));
            auto pct = [&](CycleBin bin) {
                return TextTable::percent(
                    double(r.bins.get(bin)) / double(r.cycles()), 1);
            };
            table.row({w.name, r.config, std::to_string(r.cycles()),
                       pct(CycleBin::FRAME), pct(CycleBin::WAIT),
                       pct(CycleBin::STALL), pct(CycleBin::MISS),
                       pct(CycleBin::ASSERT), pct(CycleBin::MISPRED),
                       pct(CycleBin::ICACHE)});
        }
    }
    std::printf("%s\n", table.render().c_str());
}

} // namespace

int
main()
{
    bench::banner("Figures 7+8: cycle breakdown, RP vs RPO",
                  "Figures 7 and 8 / Section 6.1");
    emitGroup("Figure 7 (SPECint):", trace::AppType::SPECint,
              trace::AppType::SPECint);
    emitGroup("Figure 8 (desktop):", trace::AppType::Business,
              trace::AppType::Content);
    std::printf("paper: the optimizer's main impact is a ~21%% net "
                "reduction in Frame cycles; assert cycles stay small.\n\n");
    return 0;
}
