/**
 * @file
 * Ablations of the design choices DESIGN.md calls out — parameters the
 * paper fixes without sweeping.  Not a paper figure; this quantifies
 * how sensitive the reproduction is to each choice.
 *
 *   - frame size cap (paper: 256 micro-ops)
 *   - frame cache capacity (paper: 16k micro-ops)
 *   - bias promotion threshold (companion-paper policy; ours 15/16)
 *   - speculative memory optimization on/off (§3.4)
 */

#include "common.hh"

using namespace replay;

namespace {

const char *APPS[] = {"crafty", "vortex", "excel"};

void
sweep(const char *title,
      std::vector<std::pair<std::string, sim::SimConfig>> points)
{
    std::printf("%s\n", title);

    bench::Grid grid;
    for (const char *app : APPS)
        grid.rows.push_back(&trace::findWorkload(app));
    grid.cols = std::move(points);
    grid.run();

    TextTable table;
    std::vector<std::string> header{"app"};
    for (const auto &[label, cfg] : grid.cols)
        header.push_back(label);
    table.header(std::move(header));

    for (size_t r = 0; r < grid.rows.size(); ++r) {
        std::vector<std::string> row{grid.rows[r]->name};
        for (size_t c = 0; c < grid.cols.size(); ++c)
            row.push_back(TextTable::fixed(grid.at(r, c).ipc(), 3));
        table.row(std::move(row));
    }
    std::printf("%s\n", table.render().c_str());
    bench::throughputFooter(grid.result);
}

} // namespace

int
main()
{
    bench::banner("Design-choice ablations (RPO IPC)",
                  "DESIGN.md implementation decisions; not a paper "
                  "figure");

    {
        std::vector<std::pair<std::string, sim::SimConfig>> points;
        for (const unsigned cap : {64u, 128u, 256u, 512u}) {
            auto cfg = sim::SimConfig::make(sim::Machine::RPO);
            cfg.engine.constructor.maxUops = cap;
            points.emplace_back("cap=" + std::to_string(cap), cfg);
        }
        sweep("frame size cap (micro-ops; paper uses 256):", points);
    }
    {
        std::vector<std::pair<std::string, sim::SimConfig>> points;
        for (const unsigned kuops : {4u, 8u, 16u, 32u}) {
            auto cfg = sim::SimConfig::make(sim::Machine::RPO);
            cfg.engine.fcacheCapacityUops = kuops * 1024;
            points.emplace_back(std::to_string(kuops) + "k", cfg);
        }
        sweep("frame cache capacity (paper uses 16k micro-ops):",
              points);
    }
    {
        std::vector<std::pair<std::string, sim::SimConfig>> points;
        const std::pair<unsigned, unsigned> thresholds[] = {
            {7, 8}, {15, 16}, {31, 32}, {63, 64}};
        for (const auto &[num, den] : thresholds) {
            auto cfg = sim::SimConfig::make(sim::Machine::RPO);
            cfg.engine.constructor.biasPromoteNum = num;
            cfg.engine.constructor.biasPromoteDen = den;
            points.emplace_back(
                std::to_string(num) + "/" + std::to_string(den), cfg);
        }
        sweep("branch promotion threshold (ours: 15/16):", points);
    }
    {
        std::vector<std::pair<std::string, sim::SimConfig>> points;
        auto spec_on = sim::SimConfig::make(sim::Machine::RPO);
        auto spec_off = sim::SimConfig::make(sim::Machine::RPO);
        spec_off.engine.optConfig.speculativeMem = false;
        points.emplace_back("spec-mem on", spec_on);
        points.emplace_back("spec-mem off", spec_off);
        sweep("speculative memory optimization (§3.4):", points);
    }
    return 0;
}
