/**
 * @file
 * Simulation hot-path microbenchmarks, built on google-benchmark.
 *
 * Covers the paths the arena/flat-index overhaul targets, one
 * benchmark per stage of the datapath:
 *
 *   - raw x86 execution (SmallVec step info + page-cached memory),
 *   - end-to-end trace simulation (the replaybench inner loop),
 *   - frame construct -> optimize -> deposit (pooled frames, scratch
 *     optimizer buffers),
 *   - frame-cache lookup and churn (flat open-addressing index),
 *   - trace-file streaming (batched block decode).
 *
 * These are exploration benches; the regression gate is the
 * deterministic `tools/perfgate` runner, which writes
 * BENCH_hotpath.json and compares it against the checked-in baseline.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/constructor.hh"
#include "core/framecache.hh"
#include "core/sequencer.hh"
#include "opt/optimizer.hh"
#include "opt/passes.hh"
#include "opt/remapper.hh"
#include "sim/simulator.hh"
#include "trace/tracefile.hh"
#include "trace/tracer.hh"
#include "trace/workload.hh"
#include "x86/executor.hh"

using namespace replay;

namespace {

/** Pre-recorded trace records to feed engine-side benchmarks. */
const std::vector<trace::TraceRecord> &
recordedTrace()
{
    static const auto records = [] {
        const auto &w = trace::findWorkload("crafty");
        const auto prog = w.buildProgram(0);
        trace::ExecutorTraceSource src(prog, 100000);
        std::vector<trace::TraceRecord> out;
        out.reserve(100000);
        while (!src.done()) {
            out.push_back(*src.peek());
            src.advance();
        }
        return out;
    }();
    return records;
}

/** Real frame candidates, for cache/optimizer benchmarks. */
const std::vector<core::FrameCandidate> &
candidates()
{
    static const auto cands = [] {
        core::FrameConstructor ctor;
        std::vector<core::FrameCandidate> out;
        for (const auto &rec : recordedTrace()) {
            if (auto cand = ctor.observe(rec))
                out.push_back(std::move(*cand));
            if (out.size() >= 256)
                break;
        }
        return out;
    }();
    return cands;
}

core::FramePtr
makeFrame(const core::FrameCandidate &cand, uint64_t id)
{
    auto frame = std::make_shared<core::Frame>();
    frame->id = id;
    frame->startPc = cand.startPc;
    frame->pcs = cand.pcs;
    frame->nextPc = cand.nextPc;
    frame->body = opt::Optimizer::passthrough(cand.uops, cand.blocks);
    return frame;
}

} // namespace

/** Raw x86 interpreter throughput (insts/s). */
static void
BM_ExecutorStep(benchmark::State &state)
{
    const auto &w = trace::findWorkload("gzip");
    const auto prog = w.buildProgram(0);
    x86::Executor exec(prog);
    uint64_t insts = 0;
    for (auto _ : state) {
        const auto &step = exec.step();
        benchmark::DoNotOptimize(step.nextPc);
        ++insts;
    }
    state.counters["insts/s"] =
        benchmark::Counter(double(insts), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ExecutorStep);

/** End-to-end trace simulation (the replaybench inner loop). */
static void
BM_SimulateTraceRPO(benchmark::State &state)
{
    const auto &w = trace::findWorkload("gzip");
    const auto cfg = sim::SimConfig::make(sim::Machine::RPO);
    const uint64_t budget = uint64_t(state.range(0));
    uint64_t insts = 0;
    for (auto _ : state) {
        auto src = w.openTrace(0, budget);
        const auto stats = sim::simulateTrace(cfg, *src, w.name);
        benchmark::DoNotOptimize(stats.cycles());
        insts += stats.x86Retired;
    }
    state.counters["insts/s"] =
        benchmark::Counter(double(insts), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulateTraceRPO)->Arg(20000)->Unit(benchmark::kMillisecond);

/** Construct -> optimize -> deposit datapath (frames/s). */
static void
BM_EngineObserveRetired(benchmark::State &state)
{
    const auto &records = recordedTrace();
    uint64_t frames = 0;
    for (auto _ : state) {
        state.PauseTiming();
        core::RePlayEngine engine;
        state.ResumeTiming();
        uint64_t now = 0;
        for (const auto &rec : records)
            engine.observeRetired(rec, ++now);
        frames += engine.stats().counter("candidates").value();
    }
    state.counters["frames/s"] =
        benchmark::Counter(double(frames), benchmark::Counter::kIsRate);
    state.counters["insts/frame-pass"] = double(records.size());
}
BENCHMARK(BM_EngineObserveRetired)->Unit(benchmark::kMillisecond);

/** Hit-path lookup over a populated flat index (lookups/s). */
static void
BM_FrameCacheLookupHit(benchmark::State &state)
{
    const auto &cands = candidates();
    core::FrameCache cache(1u << 20);   // big enough: no evictions
    std::vector<uint32_t> pcs;
    uint64_t id = 0;
    for (const auto &cand : cands) {
        cache.insert(makeFrame(cand, ++id));
        pcs.push_back(cand.startPc);
    }
    size_t i = 0;
    uint64_t lookups = 0;
    for (auto _ : state) {
        const auto frame = cache.lookup(pcs[i++ % pcs.size()]);
        benchmark::DoNotOptimize(frame.get());
        ++lookups;
    }
    state.counters["lookups/s"] =
        benchmark::Counter(double(lookups), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FrameCacheLookupHit);

/** Insert/evict churn at capacity (inserts/s, LRU victim scans). */
static void
BM_FrameCacheChurn(benchmark::State &state)
{
    const auto &cands = candidates();
    // Small capacity so steady state constantly evicts.
    core::FrameCache cache(512);
    uint64_t id = 0;
    size_t i = 0;
    uint64_t inserts = 0;
    for (auto _ : state) {
        const auto &cand = cands[i++ % cands.size()];
        cache.insert(makeFrame(cand, ++id));
        ++inserts;
    }
    state.counters["inserts/s"] =
        benchmark::Counter(double(inserts), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FrameCacheChurn);

// ---------------------------------------------------------------------
// Pass-level optimizer microbenches (PR 8 SoA slab IR).  All of them
// run over the same real candidate corpus so uops/s is comparable
// across stages: remap deposit alone, the pristine passthrough
// publish, the full seven-pass pipeline, and remap+DCE (the pass
// every other optimization leans on).
// ---------------------------------------------------------------------

/** Remap deposit alone: architectural uops -> renamed slab planes. */
static void
BM_OptRemapFrame(benchmark::State &state)
{
    const auto &cands = candidates();
    const opt::Remapper remapper;
    opt::OptBuffer buf;
    size_t i = 0;
    uint64_t uops = 0;
    for (auto _ : state) {
        const auto &cand = cands[i++ % cands.size()];
        remapper.remap(cand.uops, cand.blocks, false, buf);
        benchmark::DoNotOptimize(buf.size());
        uops += cand.uops.size();
    }
    state.counters["uops/s"] =
        benchmark::Counter(double(uops), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_OptRemapFrame);

/** Passthrough publish (RP deposit): remap + pristine bulk finalize. */
static void
BM_OptPassthroughFrame(benchmark::State &state)
{
    const auto &cands = candidates();
    opt::OptimizedFrame out;
    size_t i = 0;
    uint64_t uops = 0;
    for (auto _ : state) {
        const auto &cand = cands[i++ % cands.size()];
        opt::Optimizer::passthrough(cand.uops, cand.blocks, false, out);
        benchmark::DoNotOptimize(out.size());
        uops += cand.uops.size();
    }
    state.counters["uops/s"] =
        benchmark::Counter(double(uops), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_OptPassthroughFrame);

/** The full seven-pass pipeline + finalize (RPO deposit). */
static void
BM_OptOptimizeFrame(benchmark::State &state)
{
    const auto &cands = candidates();
    opt::Optimizer optimizer;
    opt::OptStats stats;
    opt::OptimizedFrame out;
    size_t i = 0;
    uint64_t uops = 0;
    for (auto _ : state) {
        const auto &cand = cands[i++ % cands.size()];
        optimizer.optimize(cand.uops, cand.blocks, nullptr, stats, out);
        benchmark::DoNotOptimize(out.size());
        uops += cand.uops.size();
    }
    state.counters["uops/s"] =
        benchmark::Counter(double(uops), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_OptOptimizeFrame);

/** Remap + vectorized DCE (subtract BM_OptRemapFrame for the pass). */
static void
BM_OptPassDce(benchmark::State &state)
{
    const auto &cands = candidates();
    const opt::Remapper remapper;
    opt::OptBuffer buf;
    opt::OptConfig cfg;
    opt::OptStats stats;
    size_t i = 0;
    uint64_t uops = 0;
    for (auto _ : state) {
        const auto &cand = cands[i++ % cands.size()];
        remapper.remap(cand.uops, cand.blocks, false, buf);
        opt::OptContext ctx{buf, cfg, nullptr, stats};
        benchmark::DoNotOptimize(opt::passDce(ctx));
        uops += cand.uops.size();
    }
    state.counters["uops/s"] =
        benchmark::Counter(double(uops), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_OptPassDce);

/** Trace-file streaming with batched block decode (records/s). */
static void
BM_TraceFileStream(benchmark::State &state)
{
    const std::string path = "/tmp/bench_hotpath_stream.rplt";
    static const uint64_t written = [&] {
        const auto &w = trace::findWorkload("gzip");
        return trace::TraceFileWriter::dumpProgram(w.buildProgram(0),
                                                   50000, path);
    }();
    uint64_t records = 0;
    for (auto _ : state) {
        trace::FileTraceSource src(path);
        while (!src.done()) {
            benchmark::DoNotOptimize(src.peek());
            src.advance();
        }
        records += src.consumed();
    }
    benchmark::DoNotOptimize(written);
    state.counters["records/s"] =
        benchmark::Counter(double(records), benchmark::Counter::kIsRate);
    // The file is left in /tmp: the harness re-enters this function
    // several times while estimating iteration counts, and deleting it
    // here would leave later entries with an empty stream.
}
BENCHMARK(BM_TraceFileStream)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
