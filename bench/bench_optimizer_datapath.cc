/**
 * @file
 * Optimizer datapath microbenchmarks (§4 / §5.1.4), built on
 * google-benchmark: software-side throughput of the pass pipeline over
 * real frame candidates, the datapath primitive counts per
 * micro-operation, and the occupancy behaviour of the 10-cycles-per-
 * micro-op, depth-3 engine pipeline the paper models.
 */

#include <benchmark/benchmark.h>

#include "core/constructor.hh"
#include "opt/datapath.hh"
#include "opt/optimizer.hh"
#include "trace/tracer.hh"
#include "trace/workload.hh"

using namespace replay;

namespace {

/** Harvest real frame candidates from a workload. */
std::vector<core::FrameCandidate>
harvestCandidates(const char *workload, unsigned count)
{
    const auto &w = trace::findWorkload(workload);
    const auto prog = w.buildProgram(0);
    trace::ExecutorTraceSource src(prog, 400000);
    core::FrameConstructor ctor;
    std::vector<core::FrameCandidate> out;
    while (!src.done() && out.size() < count) {
        if (auto cand = ctor.observe(*src.peek()))
            out.push_back(std::move(*cand));
        src.advance();
    }
    return out;
}

const std::vector<core::FrameCandidate> &
candidates()
{
    static const auto cands = harvestCandidates("crafty", 64);
    return cands;
}

} // namespace

/** Software optimization throughput (micro-ops optimized per second). */
static void
BM_OptimizeFrame(benchmark::State &state)
{
    const auto &cands = candidates();
    opt::Optimizer optimizer;
    opt::OptStats stats;
    uint64_t uops = 0;
    size_t i = 0;
    for (auto _ : state) {
        const auto &cand = cands[i++ % cands.size()];
        auto frame =
            optimizer.optimize(cand.uops, cand.blocks, nullptr, stats);
        benchmark::DoNotOptimize(frame.numUops());
        uops += cand.uops.size();
    }
    state.counters["uops/s"] = benchmark::Counter(
        double(uops), benchmark::Counter::kIsRate);
    state.counters["reduction%"] = 100.0 * stats.uopReduction();
}
BENCHMARK(BM_OptimizeFrame);

/** Remap-only cost (the rename step every frame pays). */
static void
BM_RemapOnly(benchmark::State &state)
{
    const auto &cands = candidates();
    size_t i = 0;
    for (auto _ : state) {
        const auto &cand = cands[i++ % cands.size()];
        auto body = opt::Optimizer::passthrough(cand.uops, cand.blocks);
        benchmark::DoNotOptimize(body.numUops());
    }
}
BENCHMARK(BM_RemapOnly);

/**
 * Datapath primitive usage per input micro-op: how many parent
 * lookups, child-list steps, field operations and rewrites a hardware
 * implementation of the pass pipeline would execute (§4's primitive
 * classes), and the implied cycles at 1 cycle/primitive against the
 * paper's 10-cycles-per-uop budget.
 */
static void
BM_DatapathPrimitives(benchmark::State &state)
{
    const auto &cands = candidates();
    opt::Optimizer optimizer;
    opt::OptStats stats;
    uint64_t prims = 0, uops = 0, prim_cycles = 0;
    size_t i = 0;
    opt::PrimitiveLatency latency;
    for (auto _ : state) {
        const auto &cand = cands[i++ % cands.size()];
        auto frame =
            optimizer.optimize(cand.uops, cand.blocks, nullptr, stats);
        prims += frame.prims.total();
        prim_cycles += latency.cyclesFor(frame.prims);
        uops += cand.uops.size();
    }
    state.counters["prims/uop"] = double(prims) / double(uops);
    state.counters["cycles/uop"] = double(prim_cycles) / double(uops);
}
BENCHMARK(BM_DatapathPrimitives);

/**
 * Engine occupancy: with candidates arriving at rePLay-like rates, a
 * pipeline depth of 3 at 10 cycles/uop suffices (§5.1.4) — measured as
 * the drop rate at several depths.
 */
static void
BM_PipelineDepthSweep(benchmark::State &state)
{
    const unsigned depth = unsigned(state.range(0));
    const auto &cands = candidates();
    for (auto _ : state) {
        opt::OptimizerPipeline pipe(depth, 10);
        uint64_t now = 0;
        for (unsigned k = 0; k < 512; ++k) {
            const auto &cand = cands[k % cands.size()];
            // Candidates arrive at post-deduplication rates: the
            // sequencer filters rebuild candidates, so genuinely new
            // frames show up every few frame-lengths.
            now += cand.uops.size() * 4 + 30;
            benchmark::DoNotOptimize(
                pipe.schedule(now, unsigned(cand.uops.size())));
        }
        state.counters["drop%"] = 100.0 * double(pipe.dropped()) /
            double(pipe.dropped() + pipe.accepted());
    }
}
BENCHMARK(BM_PipelineDepthSweep)->Arg(1)->Arg(2)->Arg(3)->Arg(4);

BENCHMARK_MAIN();
