/**
 * @file
 * Fuzzing throughput microbenchmarks: how many generated programs,
 * headless frame-machine instructions, and full oracle instructions
 * per second the differential harness sustains.  The numbers bound how
 * large a --seed-range sweep is practical in CI.
 */

#include <benchmark/benchmark.h>

#include "fuzz/difforacle.hh"
#include "sim/headless.hh"

using namespace replay;

namespace {

void
BM_ProgenMaterialize(benchmark::State &state)
{
    uint64_t seed = 0;
    for (auto _ : state) {
        const auto prog = fuzz::ProgramSpec::random(seed++).materialize();
        benchmark::DoNotOptimize(prog.code().size());
    }
    state.SetItemsProcessed(int64_t(state.iterations()));
}
BENCHMARK(BM_ProgenMaterialize);

void
BM_FrameMachine(benchmark::State &state)
{
    const uint64_t max_insts = uint64_t(state.range(0));
    const auto prog = fuzz::ProgramSpec::random(1).materialize();
    const fuzz::OracleConfig cfg;
    for (auto _ : state) {
        sim::FrameMachine fm(prog, cfg.engine(), max_insts);
        while (fm.step().kind != sim::MachineStep::Kind::DONE) {
        }
        benchmark::DoNotOptimize(fm.retired());
    }
    state.SetItemsProcessed(int64_t(state.iterations())
                            * int64_t(max_insts));
}
BENCHMARK(BM_FrameMachine)->Arg(4000)->Unit(benchmark::kMillisecond);

void
BM_OracleRun(benchmark::State &state)
{
    const uint64_t max_insts = uint64_t(state.range(0));
    uint64_t seed = 0;
    uint64_t frames = 0;
    for (auto _ : state) {
        fuzz::OracleConfig cfg;
        cfg.maxInsts = max_insts;
        const auto report =
            fuzz::runOracle(fuzz::ProgramSpec::random(seed++), cfg);
        if (report.diverged())
            state.SkipWithError("unexpected divergence");
        frames += report.framesCommitted;
    }
    state.SetItemsProcessed(int64_t(state.iterations())
                            * int64_t(max_insts));
    state.counters["frames"] =
        benchmark::Counter(double(frames), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_OracleRun)->Arg(4000)->Unit(benchmark::kMillisecond);

} // anonymous namespace

BENCHMARK_MAIN();
