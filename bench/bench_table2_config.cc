/**
 * @file
 * Table 2: the processor configuration, as actually instantiated by the
 * simulator (printed from the live PipelineConfig, not hard-coded).
 */

#include "common.hh"

#include "sim/config.hh"

using namespace replay;

int
main()
{
    bench::banner("Table 2: Configuration of Processor",
                  "Table 2 / Section 5.3");

    const auto rpo = sim::SimConfig::make(sim::Machine::RPO);
    std::printf("%s", rpo.pipe.describe().c_str());
    std::printf("Frame/Trace   %u micro-operations\n",
                rpo.engine.fcacheCapacityUops);
    std::printf("Frames        %u-%u original micro-operations\n",
                rpo.engine.constructor.minUops,
                rpo.engine.constructor.maxUops);
    std::printf("Optimizer     %u cycles/uop, pipeline depth %u\n",
                rpo.engine.optCyclesPerUop, rpo.engine.optPipelineDepth);

    const auto ic = sim::SimConfig::make(sim::Machine::IC);
    std::printf("IC reference  %ukB ICache\n\n",
                ic.pipe.icacheBytes / 1024);
    return 0;
}
