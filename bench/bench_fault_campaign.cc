/**
 * @file
 * Fault-injection campaign: sweep seeded frame-corruption rates across
 * all 14 workloads and demand the three harness guarantees hold
 * everywhere —
 *
 *   1. detection:   every armed corruption that reaches a committing
 *                   frame is rejected by the online verifier first
 *                   (zero escapes),
 *   2. state:       the architectural digest at the instruction budget
 *                   is bit-identical to the fault-free run,
 *   3. degradation: performance degrades gracefully — faulty rePLay+Opt
 *                   never drops below the conventional ICache baseline.
 *
 * A second phase damages persisted trace files (truncation, random bit
 * flips) and checks the container degrades to its valid prefix instead
 * of killing the simulator.  Exits non-zero on any violation.
 */

#include "common.hh"

#include <filesystem>

#include "fault/faultinjector.hh"
#include "trace/tracefile.hh"

using namespace replay;
using fault::FaultInjector;
using sim::Machine;
using sim::RunStats;
using sim::SimConfig;
using trace::FileTraceSource;
using trace::TraceError;
using trace::TraceFileWriter;

namespace {

unsigned failures = 0;

void
check(bool ok, const std::string &what)
{
    if (!ok) {
        ++failures;
        std::printf("FAIL: %s\n", what.c_str());
    }
}

/** A config with the online verifier armed at the given fault rate. */
SimConfig
verifiedConfig(Machine machine, double rate, uint64_t insts)
{
    SimConfig cfg = SimConfig::make(machine);
    cfg.maxInsts = insts;
    cfg.verifyOnline = true;
    cfg.fault.seed = 0x5eed + unsigned(rate * 10000);
    cfg.fault.fetchFlipRate = rate;
    cfg.fault.passSabotageRate = rate;
    return cfg;
}

} // namespace

int
main()
{
    bench::banner("Fault-injection campaign",
                  "robustness harness: 100% pre-commit detection, "
                  "bit-identical state, graceful degradation");

    const uint64_t insts = sim::defaultInstsPerTrace();
    const double rates[] = {0.005, 0.02, 0.05};

    // One parallel sweep covers the whole campaign: per workload, the
    // IC digest reference, the clean RPO run, and the faulty RPO runs.
    bench::Grid grid;
    grid.rows = sim::standardWorkloadRows();
    grid.cols = {{"IC", verifiedConfig(Machine::IC, 0.0, insts)},
                 {"clean", verifiedConfig(Machine::RPO, 0.0, insts)}};
    for (const double rate : rates) {
        char label[16];
        std::snprintf(label, sizeof(label), "%.3f", rate);
        grid.cols.emplace_back(label,
                               verifiedConfig(Machine::RPO, rate, insts));
    }
    grid.run(insts);

    TextTable table;
    table.header({"app", "rate", "injected", "detected", "escaped",
                  "quarantines", "state", "IPC", "vs IC"});

    for (size_t row = 0; row < grid.rows.size(); ++row) {
        const auto &w = *grid.rows[row];
        const RunStats &ic = grid.at(row, 0);
        const RunStats &clean = grid.at(row, 1);
        check(clean.archDigest == ic.archDigest,
              w.name + ": clean RPO digest != IC digest");
        check(clean.verifyDetections == 0,
              w.name + ": clean run had verifier detections");
        table.row({w.name, "0", "0",
                   std::to_string(clean.verifyChecks) + " checks", "0",
                   "0", "ok", TextTable::fixed(clean.ipc(), 2),
                   TextTable::percent(clean.ipc() / ic.ipc() - 1.0, 0)});

        for (size_t i = 0; i < std::size(rates); ++i) {
            const RunStats &r = grid.at(row, 2 + i);
            const uint64_t injected =
                r.faultsFetchFlip + r.faultsPassSabotage;
            const bool state_ok = r.archDigest == clean.archDigest;

            check(r.corruptFrameCommits == 0,
                  w.name + ": corrupted frame escaped the verifier");
            check(state_ok, w.name + ": architectural state diverged");
            check(r.quarantines == r.verifyDetections,
                  w.name + ": detection without quarantine");
            check(r.ipc() >= ic.ipc(),
                  w.name + ": degraded below the ICache baseline");

            char rate_s[16];
            std::snprintf(rate_s, sizeof(rate_s), "%.3f", rates[i]);
            table.row({w.name, rate_s, std::to_string(injected),
                       std::to_string(r.verifyDetections),
                       std::to_string(r.corruptFrameCommits),
                       std::to_string(r.quarantines),
                       state_ok ? "ok" : "DIVERGED",
                       TextTable::fixed(r.ipc(), 2),
                       TextTable::percent(r.ipc() / ic.ipc() - 1.0, 0)});
        }
        table.separator();
    }
    std::printf("%s\n", table.render().c_str());
    bench::throughputFooter(grid.result);

    // ---- phase 2: damaged trace files --------------------------------
    std::printf("Trace-container robustness:\n");
    const uint64_t dump_insts = std::min<uint64_t>(insts, 20000);
    for (const char *name : {"gzip", "eon", "excel"}) {
        const auto &w = trace::findWorkload(name);
        const std::string path = (std::filesystem::temp_directory_path() /
                                  (std::string(name) + ".campaign.rplt"))
                                     .string();
        TraceFileWriter::dumpProgram(w.buildProgram(0), dump_insts, path);
        const uint64_t size = std::filesystem::file_size(path);

        // Truncation: the reader must surface the valid prefix and the
        // simulator must complete on it.
        FaultInjector::truncateFile(path, size / 2);
        FileTraceSource truncated(path);
        SimConfig cfg = SimConfig::make(Machine::RPO);
        const RunStats r = sim::simulateTrace(cfg, truncated, name);
        check(r.x86Retired > 0 && r.x86Retired < dump_insts,
              std::string(name) + ": truncated trace not prefix-read");
        check(truncated.error().kind == TraceError::Kind::TRUNCATED,
              std::string(name) + ": truncation not reported");
        std::printf("  %-6s truncated  -> %llu/%llu insts, error=%s\n",
                    name, (unsigned long long)r.x86Retired,
                    (unsigned long long)dump_insts,
                    trace::traceErrorKindName(truncated.error().kind));

        // Bit flips: record checksums must stop the stream.
        TraceFileWriter::dumpProgram(w.buildProgram(0), dump_insts, path);
        FaultInjector::corruptFileBytes(path, 99, 0.0002, 20);
        FileTraceSource flipped(path);
        uint64_t n = 0;
        while (!flipped.done()) {
            flipped.advance();
            ++n;
        }
        check(flipped.error().kind == TraceError::Kind::BAD_CHECKSUM ||
                  flipped.error().kind == TraceError::Kind::TRUNCATED,
              std::string(name) + ": corruption not caught");
        std::printf("  %-6s bit-flips  -> %llu/%llu records, error=%s\n",
                    name, (unsigned long long)n,
                    (unsigned long long)dump_insts,
                    trace::traceErrorKindName(flipped.error().kind));
        std::filesystem::remove(path);
    }

    if (failures) {
        std::printf("\n%u FAILURE(S)\n", failures);
        return 1;
    }
    std::printf("\nall guarantees held\n");
    return 0;
}
