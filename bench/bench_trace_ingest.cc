/**
 * @file
 * Trace ingest bandwidth: v2 flat container (batched fread + per-record
 * FNV) vs the v3 chunked container on its buffered and mmap read paths,
 * raw and zlib codecs.
 *
 * This is the microbench behind the v3 design claim (DESIGN.md): the
 * word-at-a-time chunk checksum plus the zero-copy mmap decode must
 * ingest at least 2x the records/s of the v2 fread path.  The same
 * number feeds the perfgate `trace_ingest_mbps` metric; EXPERIMENTS.md
 * carries a measured before/after table.
 *
 * REPLAY_SIM_INSTS overrides the per-container record count.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "trace/chunk.hh"
#include "trace/tracefile.hh"
#include "trace/tracer.hh"
#include "trace/tracev3.hh"
#include "trace/workload.hh"
#include "util/logging.hh"

using namespace replay;

namespace {

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

struct Row
{
    std::string name;
    double recordsPerSec = 0;
    double mbPerSec = 0;        ///< decoded record bytes per second
    uint64_t fileBytes = 0;
};

/** Best-of-three full drains of whatever @p open returns. */
Row
measure(const std::string &name, uint64_t records, uint64_t file_bytes,
        const std::function<std::unique_ptr<trace::TraceSource>()> &open)
{
    Row row;
    row.name = name;
    row.fileBytes = file_bytes;
    for (int pass = 0; pass < 4; ++pass) {    // pass 0 warms the cache
        trace::clearTraceQuarantine();
        auto src = open();
        fatal_if(!src, "%s: cannot open container", name.c_str());
        const double t0 = now();
        while (!src->done())
            src->advance();
        const double dt = now() - t0;
        fatal_if(src->consumed() != records,
                 "%s: delivered %llu of %llu records", name.c_str(),
                 (unsigned long long)src->consumed(),
                 (unsigned long long)records);
        if (pass > 0 && dt > 0)
            row.recordsPerSec =
                std::max(row.recordsPerSec, double(records) / dt);
    }
    row.mbPerSec = row.recordsPerSec * trace::wire::recordWireBytes() / 1e6;
    return row;
}

} // namespace

int
main()
{
    uint64_t records = 200000;
    if (const char *env = std::getenv("REPLAY_SIM_INSTS"))
        records = std::strtoull(env, nullptr, 0);

    const auto &w = trace::findWorkload("crafty");
    const auto prog = w.buildProgram(0);
    const std::string dir =
        std::filesystem::temp_directory_path().string() + "/";
    const std::string v2_path = dir + "bench_ingest.rplt";
    const std::string raw_path = dir + "bench_ingest_raw.rpl3";
    const std::string zlib_path = dir + "bench_ingest_zlib.rpl3";

    std::printf("trace ingest bandwidth: %llu records of %s "
                "(%zu wire bytes each)\n\n",
                (unsigned long long)records, w.name.c_str(),
                trace::wire::recordWireBytes());

    trace::TraceFileWriter::dumpProgram(prog, records, v2_path);
    trace::V3Options raw_opts;
    raw_opts.codec = trace::V3Codec::RAW;
    trace::TraceV3Writer::dumpProgram(prog, records, raw_path, raw_opts);
    if (trace::v3ZlibAvailable()) {
        trace::V3Options z;
        z.codec = trace::V3Codec::ZLIB;
        trace::TraceV3Writer::dumpProgram(prog, records, zlib_path, z);
    }

    const auto file_bytes = [](const std::string &p) {
        return uint64_t(std::filesystem::file_size(p));
    };

    std::vector<Row> rows;
    rows.push_back(measure(
        "v2 fread", records, file_bytes(v2_path), [&] {
            return std::unique_ptr<trace::TraceSource>(
                new trace::FileTraceSource(v2_path));
        }));
    trace::V3SourceOptions buffered;
    buffered.preferMmap = false;
    rows.push_back(measure(
        "v3 raw buffered", records, file_bytes(raw_path), [&] {
            return std::unique_ptr<trace::TraceSource>(
                new trace::TraceV3Source(raw_path, buffered));
        }));
    rows.push_back(measure(
        "v3 raw mmap", records, file_bytes(raw_path), [&] {
            return std::unique_ptr<trace::TraceSource>(
                new trace::TraceV3Source(raw_path));
        }));
    if (trace::v3ZlibAvailable()) {
        rows.push_back(measure(
            "v3 zlib mmap", records, file_bytes(zlib_path), [&] {
                return std::unique_ptr<trace::TraceSource>(
                    new trace::TraceV3Source(zlib_path));
            }));
    }

    std::printf("%-18s %14s %10s %14s\n", "path", "records/s", "MB/s",
                "container B");
    for (const Row &row : rows)
        std::printf("%-18s %14.0f %10.1f %14llu\n", row.name.c_str(),
                    row.recordsPerSec, row.mbPerSec,
                    (unsigned long long)row.fileBytes);

    const double ratio = rows[2].recordsPerSec / rows[0].recordsPerSec;
    std::printf("\nv3 mmap / v2 fread: %.2fx %s\n", ratio,
                ratio >= 2.0 ? "(meets the >=2x ingest target)"
                             : "(BELOW the >=2x ingest target)");

    for (const std::string &p : {v2_path, raw_path, zlib_path}) {
        std::error_code ec;
        std::filesystem::remove(p, ec);
    }
    return ratio >= 2.0 ? 0 : 1;
}
