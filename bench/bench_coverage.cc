/**
 * @file
 * Frame coverage and assertion-cycle shares (§6.1 text claims): SPEC
 * applications exhibit higher dynamic frame coverage than the desktop
 * applications, and cycles lost to assertions are a small share of
 * execution.
 */

#include "common.hh"

using namespace replay;
using timing::CycleBin;

int
main()
{
    bench::banner("Coverage and assertion cost",
                  "Section 6.1 text: ~86% SPEC vs ~72% desktop "
                  "coverage; assert cycles < 3%");

    bench::Grid grid;
    grid.rows = sim::standardWorkloadRows();
    grid.cols = {{"RPO", sim::SimConfig::make(sim::Machine::RPO)}};
    grid.run();

    TextTable table;
    table.header({"app", "type", "coverage", "assert cycles",
                  "aborts/commits"});
    double cov[2] = {0, 0};
    unsigned n[2] = {0, 0};
    double assert_share_sum = 0;
    for (size_t row = 0; row < grid.rows.size(); ++row) {
        const auto &w = *grid.rows[row];
        const auto &r = grid.at(row, 0);
        const bool spec = w.type == trace::AppType::SPECint;
        cov[spec ? 0 : 1] += r.coverage();
        ++n[spec ? 0 : 1];
        const double assert_share =
            double(r.bins.get(CycleBin::ASSERT)) / double(r.cycles());
        assert_share_sum += assert_share;
        table.row({w.name, trace::appTypeName(w.type),
                   TextTable::percent(r.coverage(), 1),
                   TextTable::percent(assert_share, 1),
                   std::to_string(r.frameAborts) + "/" +
                       std::to_string(r.frameCommits)});
    }
    table.separator();
    std::printf("%s\n", table.render().c_str());
    std::printf("SPEC average coverage:    %.1f%%\n",
                cov[0] / n[0] * 100);
    std::printf("desktop average coverage: %.1f%%\n",
                cov[1] / n[1] * 100);
    std::printf("average assert cycles:    %.1f%%\n\n",
                assert_share_sum / double(grid.rows.size()) * 100);
    bench::throughputFooter(grid.result);
    return 0;
}
