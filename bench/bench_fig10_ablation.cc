/**
 * @file
 * Figure 10: the performance impact of the individual optimizations.
 * Starting from all optimizations enabled, each of value-ASSerTion
 * combining, Constant Propagation, Common Subexpression Elimination,
 * NOP removal, ReAssociation, and Store Forwarding is disabled in
 * turn.  Results are plotted on the paper's relative scale: 0 = plain
 * rePLay (RP), 1 = all optimizations (RPO).  Dead code elimination is
 * enabled in every run, as in the paper.
 */

#include "common.hh"

using namespace replay;

int
main()
{
    bench::banner("Figure 10: impact of individual optimizations",
                  "Figure 10 / Section 6.4");

    // The applications the paper selects ("only those applications for
    // which optimization provides a significant performance
    // advantage").
    const char *apps[] = {"bzip2", "crafty", "vortex", "dream", "excel"};
    const char *passes[] = {"ASST", "CP", "CSE", "NOP", "RA", "SF"};

    TextTable table;
    table.header({"app", "no ASST", "no CP", "no CSE", "no NOP",
                  "no RA", "no SF"});
    for (const char *name : apps) {
        const auto &w = trace::findWorkload(name);
        const auto rp =
            sim::runWorkload(w, sim::SimConfig::make(sim::Machine::RP));
        const auto rpo =
            sim::runWorkload(w, sim::SimConfig::make(sim::Machine::RPO));
        const double span = rpo.ipc() - rp.ipc();

        std::vector<std::string> row{name};
        for (const char *pass : passes) {
            auto cfg = sim::SimConfig::make(sim::Machine::RPO);
            cfg.engine.optConfig = opt::OptConfig::without(pass);
            const auto r = sim::runWorkload(w, cfg);
            // Relative IPC: 0 == RP, 1 == RPO.
            const double rel =
                span != 0.0 ? (r.ipc() - rp.ipc()) / span : 1.0;
            row.push_back(TextTable::fixed(rel, 2));
        }
        table.row(std::move(row));
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("paper trends: reassociation is the gateway "
                "optimization (disabling it collapses the benefit on "
                "several apps);\nCSE dominates on bzip2; disabling "
                "store forwarding can *help* Excel, whose unsafe "
                "stores alias.\n\n");
    return 0;
}
