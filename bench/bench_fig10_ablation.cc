/**
 * @file
 * Figure 10: the performance impact of the individual optimizations.
 * Starting from all optimizations enabled, each of value-ASSerTion
 * combining, Constant Propagation, Common Subexpression Elimination,
 * NOP removal, ReAssociation, and Store Forwarding is disabled in
 * turn.  Results are plotted on the paper's relative scale: 0 = plain
 * rePLay (RP), 1 = all optimizations (RPO).  Dead code elimination is
 * enabled in every run, as in the paper.
 */

#include "common.hh"

using namespace replay;

int
main()
{
    bench::banner("Figure 10: impact of individual optimizations",
                  "Figure 10 / Section 6.4");

    // The applications the paper selects ("only those applications for
    // which optimization provides a significant performance
    // advantage").
    const char *apps[] = {"bzip2", "crafty", "vortex", "dream", "excel"};
    const char *passes[] = {"ASST", "CP", "CSE", "NOP", "RA", "SF"};

    bench::Grid grid;
    for (const char *name : apps)
        grid.rows.push_back(&trace::findWorkload(name));
    grid.cols = {{"RP", sim::SimConfig::make(sim::Machine::RP)},
                 {"RPO", sim::SimConfig::make(sim::Machine::RPO)}};
    for (const char *pass : passes) {
        auto cfg = sim::SimConfig::make(sim::Machine::RPO);
        cfg.engine.optConfig = opt::OptConfig::without(pass);
        grid.cols.emplace_back(std::string("no ") + pass, cfg);
    }
    grid.run();

    TextTable table;
    table.header({"app", "no ASST", "no CP", "no CSE", "no NOP",
                  "no RA", "no SF"});
    for (size_t r = 0; r < grid.rows.size(); ++r) {
        const auto &rp = grid.at(r, 0);
        const auto &rpo = grid.at(r, 1);
        const double span = rpo.ipc() - rp.ipc();

        std::vector<std::string> row{grid.rows[r]->name};
        for (size_t p = 0; p < std::size(passes); ++p) {
            const auto &result = grid.at(r, 2 + p);
            // Relative IPC: 0 == RP, 1 == RPO.
            const double rel =
                span != 0.0 ? (result.ipc() - rp.ipc()) / span : 1.0;
            row.push_back(TextTable::fixed(rel, 2));
        }
        table.row(std::move(row));
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("paper trends: reassociation is the gateway "
                "optimization (disabling it collapses the benefit on "
                "several apps);\nCSE dominates on bzip2; disabling "
                "store forwarding can *help* Excel, whose unsafe "
                "stores alias.\n\n");
    bench::throughputFooter(grid.result);
    return 0;
}
