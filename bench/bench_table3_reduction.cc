/**
 * @file
 * Table 3: the percentage of micro-operations and LOADs removed by the
 * rePLay optimizer, and the resulting increase in IPC, per application.
 */

#include "common.hh"

using namespace replay;

int
main()
{
    bench::banner(
        "Table 3: micro-ops and LOADs removed, and IPC increase",
        "Table 3 / Section 6.2 (paper averages: 21% / 22% / 17%)");

    TextTable table;
    table.header({"Application", "Micro-ops Removed", "Loads Removed",
                  "Increase in IPC"});
    double u = 0, l = 0, g = 0;
    for (const auto &w : trace::standardWorkloads()) {
        const auto rp =
            sim::runWorkload(w, sim::SimConfig::make(sim::Machine::RP));
        const auto rpo =
            sim::runWorkload(w, sim::SimConfig::make(sim::Machine::RPO));
        const double gain = rpo.ipc() / rp.ipc() - 1.0;
        table.row({w.name, TextTable::percent(rpo.uopReduction(), 0),
                   TextTable::percent(rpo.loadReduction(), 0),
                   TextTable::percent(gain, 0)});
        u += rpo.uopReduction();
        l += rpo.loadReduction();
        g += gain;
    }
    table.separator();
    table.row({"Average", TextTable::percent(u / 14, 0),
               TextTable::percent(l / 14, 0),
               TextTable::percent(g / 14, 0)});
    std::printf("%s\n", table.render().c_str());
    return 0;
}
