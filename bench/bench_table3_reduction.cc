/**
 * @file
 * Table 3: the percentage of micro-operations and LOADs removed by the
 * rePLay optimizer, and the resulting increase in IPC, per application.
 */

#include "common.hh"

using namespace replay;

int
main()
{
    bench::banner(
        "Table 3: micro-ops and LOADs removed, and IPC increase",
        "Table 3 / Section 6.2 (paper averages: 21% / 22% / 17%)");

    bench::Grid grid;
    grid.rows = sim::standardWorkloadRows();
    grid.cols = {{"RP", sim::SimConfig::make(sim::Machine::RP)},
                 {"RPO", sim::SimConfig::make(sim::Machine::RPO)}};
    grid.run();

    TextTable table;
    table.header({"Application", "Micro-ops Removed", "Loads Removed",
                  "Increase in IPC"});
    double u = 0, l = 0, g = 0;
    for (size_t r = 0; r < grid.rows.size(); ++r) {
        const auto &rp = grid.at(r, 0);
        const auto &rpo = grid.at(r, 1);
        const double gain = rpo.ipc() / rp.ipc() - 1.0;
        table.row({grid.rows[r]->name,
                   TextTable::percent(rpo.uopReduction(), 0),
                   TextTable::percent(rpo.loadReduction(), 0),
                   TextTable::percent(gain, 0)});
        u += rpo.uopReduction();
        l += rpo.loadReduction();
        g += gain;
    }
    // Divide by the measured workload count, not a hard-coded 14, so
    // adding a workload cannot silently skew the averages.
    const double n = double(grid.rows.size());
    table.separator();
    table.row({"Average", TextTable::percent(u / n, 0),
               TextTable::percent(l / n, 0),
               TextTable::percent(g / n, 0)});
    std::printf("%s\n", table.render().c_str());
    bench::throughputFooter(grid.result);
    return 0;
}
