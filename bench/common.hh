/**
 * @file
 * Shared helpers for the benchmark binaries.  Each binary regenerates
 * one table or figure of the paper; run them all with the bench loop
 * (`for b in build/bench/<binary>; do ...`).
 *
 * Trace length defaults to a laptop-scale sample per hot-spot trace
 * (the paper ran 50M-300M instructions per application); set
 * REPLAY_SIM_INSTS to lengthen runs.
 */

#ifndef REPLAY_BENCH_COMMON_HH
#define REPLAY_BENCH_COMMON_HH

#include <cstdio>
#include <string>

#include "sim/runner.hh"
#include "trace/workload.hh"
#include "util/table.hh"

namespace replay::bench {

inline void
banner(const std::string &title, const std::string &paper_note)
{
    std::printf("=====================================================\n");
    std::printf("%s\n", title.c_str());
    std::printf("(paper reference: %s)\n", paper_note.c_str());
    std::printf("traces: %llu x86 instructions per hot spot "
                "(REPLAY_SIM_INSTS overrides)\n\n",
                (unsigned long long)sim::defaultInstsPerTrace());
}

} // namespace replay::bench

#endif // REPLAY_BENCH_COMMON_HH
