/**
 * @file
 * Shared helpers for the benchmark binaries.  Each binary regenerates
 * one table or figure of the paper; run them all with the bench loop
 * (`for b in build/bench/<binary>; do ...`) or regenerate selected
 * figures with `tools/replaybench`.
 *
 * All grid-shaped benches run through the deterministic parallel sweep
 * driver (sim/sweep.hh): results are bit-identical to the serial loop
 * for any worker count.  REPLAY_SIM_JOBS caps the workers (default:
 * hardware concurrency); REPLAY_SIM_INSTS lengthens the traces.
 */

#ifndef REPLAY_BENCH_COMMON_HH
#define REPLAY_BENCH_COMMON_HH

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "sim/sweep.hh"
#include "trace/workload.hh"
#include "util/table.hh"

namespace replay::bench {

inline void
banner(const std::string &title, const std::string &paper_note)
{
    std::printf("=====================================================\n");
    std::printf("%s\n", title.c_str());
    std::printf("(paper reference: %s)\n", paper_note.c_str());
    std::printf("traces: %llu x86 instructions per hot spot "
                "(REPLAY_SIM_INSTS overrides), %u sweep workers "
                "(REPLAY_SIM_JOBS overrides)\n\n",
                (unsigned long long)sim::defaultInstsPerTrace(),
                sim::defaultSweepJobs());
}

/**
 * A (workload x config) result grid, simulated in one parallel sweep
 * and indexed row-major.  The canonical way a bench gets its numbers.
 */
struct Grid
{
    std::vector<const trace::Workload *> rows;
    std::vector<std::pair<std::string, sim::SimConfig>> cols;
    sim::SweepResult result;

    /** Simulate every cell; bit-identical for any worker count. */
    void
    run(uint64_t insts_per_trace = 0)
    {
        sim::SweepOptions opts;
        opts.instsPerTrace = insts_per_trace;
        result = sim::runSweep(sim::gridCells(rows, cols), opts);
    }

    const sim::RunStats &
    at(size_t row, size_t col) const
    {
        return result.cells.at(row * cols.size() + col);
    }
};

/** Print the sweep's measured wall clock and throughput. */
inline void
throughputFooter(const sim::SweepResult &result)
{
    std::printf("sweep: %u cells (%u trace runs) in %.2fs with %u "
                "worker(s) — %.2f cells/s, %.2fM x86 insts/s, "
                "digest %016llx\n\n",
                unsigned(result.cells.size()), result.traceRuns,
                result.wallSeconds, result.jobs, result.cellsPerSec(),
                result.instsPerSec() / 1e6,
                (unsigned long long)result.digest());
}

} // namespace replay::bench

#endif // REPLAY_BENCH_COMMON_HH
