/**
 * @file
 * Figure 6: estimated x86 instructions retired per cycle for the
 * ICache (IC), Trace Cache (TC), rePLay (RP), and rePLay+Optimization
 * (RPO) configurations, with the percent IPC increase of RPO over RP
 * annotated per application (the labels above the bars in the paper).
 */

#include "common.hh"

using namespace replay;

int
main()
{
    bench::banner("Figure 6: x86 IPC of IC / TC / RP / RPO",
                  "Figure 6 / Section 6.1");

    bench::Grid grid;
    grid.rows = sim::standardWorkloadRows();
    grid.cols = sim::allMachineColumns();
    grid.run();

    TextTable table;
    table.header({"app", "IC", "TC", "RP", "RPO", "RPO vs RP"});
    double sums[4] = {0, 0, 0, 0};
    double gain_sum = 0;
    for (size_t r = 0; r < grid.rows.size(); ++r) {
        const double gain =
            grid.at(r, 3).ipc() / grid.at(r, 2).ipc() - 1.0;
        table.row({grid.rows[r]->name,
                   TextTable::fixed(grid.at(r, 0).ipc(), 3),
                   TextTable::fixed(grid.at(r, 1).ipc(), 3),
                   TextTable::fixed(grid.at(r, 2).ipc(), 3),
                   TextTable::fixed(grid.at(r, 3).ipc(), 3),
                   TextTable::percent(gain, 0)});
        for (size_t c = 0; c < 4; ++c)
            sums[c] += grid.at(r, c).ipc();
        gain_sum += gain;
    }
    const double n = double(grid.rows.size());
    table.separator();
    table.row({"average", TextTable::fixed(sums[0] / n, 3),
               TextTable::fixed(sums[1] / n, 3),
               TextTable::fixed(sums[2] / n, 3),
               TextTable::fixed(sums[3] / n, 3),
               TextTable::percent(gain_sum / n, 0)});
    std::printf("%s\n", table.render().c_str());
    std::printf("paper: 17%% average IPC increase of RPO over RP, "
                "highly variable per application;\n"
                "gzip is the one application where RPO does not beat "
                "every other configuration.\n\n");
    bench::throughputFooter(grid.result);
    return 0;
}
