/**
 * @file
 * Figure 6: estimated x86 instructions retired per cycle for the
 * ICache (IC), Trace Cache (TC), rePLay (RP), and rePLay+Optimization
 * (RPO) configurations, with the percent IPC increase of RPO over RP
 * annotated per application (the labels above the bars in the paper).
 */

#include "common.hh"

using namespace replay;

int
main()
{
    bench::banner("Figure 6: x86 IPC of IC / TC / RP / RPO",
                  "Figure 6 / Section 6.1");

    TextTable table;
    table.header({"app", "IC", "TC", "RP", "RPO", "RPO vs RP"});
    double sums[4] = {0, 0, 0, 0};
    double gain_sum = 0;
    for (const auto &w : trace::standardWorkloads()) {
        const auto rs = sim::runAllMachines(w);
        const double gain = rs[3].ipc() / rs[2].ipc() - 1.0;
        table.row({w.name, TextTable::fixed(rs[0].ipc(), 3),
                   TextTable::fixed(rs[1].ipc(), 3),
                   TextTable::fixed(rs[2].ipc(), 3),
                   TextTable::fixed(rs[3].ipc(), 3),
                   TextTable::percent(gain, 0)});
        for (int i = 0; i < 4; ++i)
            sums[i] += rs[i].ipc();
        gain_sum += gain;
    }
    table.separator();
    table.row({"average", TextTable::fixed(sums[0] / 14, 3),
               TextTable::fixed(sums[1] / 14, 3),
               TextTable::fixed(sums[2] / 14, 3),
               TextTable::fixed(sums[3] / 14, 3),
               TextTable::percent(gain_sum / 14, 0)});
    std::printf("%s\n", table.render().c_str());
    std::printf("paper: 17%% average IPC increase of RPO over RP, "
                "highly variable per application;\n"
                "gzip is the one application where RPO does not beat "
                "every other configuration.\n\n");
    return 0;
}
