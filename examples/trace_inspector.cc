/**
 * @file
 * Trace-file workflow: capture a workload's dynamic trace to disk (the
 * equivalent of the paper's AMD-provided trace files), then reopen and
 * inspect it — disassembled instructions with their register and
 * memory side effects — and replay it through the simulator.
 *
 *   $ build/examples/trace_inspector [workload] [insts]
 */

#include <cstdio>
#include <cstdlib>

#include "sim/simulator.hh"
#include "trace/tracefile.hh"
#include "trace/workload.hh"
#include "x86/disasm.hh"

using namespace replay;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "bzip2";
    const uint64_t insts =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 100000;

    const auto &w = trace::findWorkload(name);
    const auto prog = w.buildProgram(0);
    const std::string path = "/tmp/" + name + ".rplt";
    trace::TraceFileWriter::dumpProgram(prog, insts, path);
    std::printf("captured %llu instructions of %s to %s\n\n",
                (unsigned long long)insts, name.c_str(), path.c_str());

    // Inspect the first records, the way the paper's trace reader
    // disassembles raw instruction data (§5.1.1).
    trace::FileTraceSource src(path);
    std::printf("first 12 records:\n");
    for (unsigned i = 0; i < 12; ++i) {
        const trace::TraceRecord *rec = src.peek();
        std::printf("  %08x  %-28s", rec->pc,
                    x86::disassemble(rec->inst).c_str());
        for (unsigned r = 0; r < rec->numRegWrites; ++r) {
            std::printf("  %s=%08x",
                        x86::regName(rec->regWrites[r].reg),
                        rec->regWrites[r].value);
        }
        for (unsigned m = 0; m < rec->numMemOps; ++m) {
            std::printf("  %s[%08x]=%08x",
                        rec->memOps[m].isStore ? "st" : "ld",
                        rec->memOps[m].addr, rec->memOps[m].data);
        }
        std::printf("\n");
        src.advance();
    }

    // Replay the rest of the file through the optimizing machine.
    trace::FileTraceSource replay_src(path);
    const auto stats = sim::simulateTrace(
        sim::SimConfig::make(sim::Machine::RPO), replay_src, name);
    std::printf("\nreplayed under RPO: IPC %.3f, %.0f%% coverage, "
                "%.0f%% micro-ops removed\n",
                stats.ipc(), stats.coverage() * 100,
                stats.uopReduction() * 100);
    return 0;
}
