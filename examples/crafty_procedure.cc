/**
 * @file
 * The running example of §3 / Figure 2: a procedure fragment from
 * crafty, optimized at increasing scope.
 *
 * Prints the unoptimized micro-operations and the intra-block,
 * inter-block, and frame-level optimized versions — reproducing the
 * paper's "seven of the seventeen micro-operations are removed,
 * including two of the five loads" at frame scope, with 13 and 12
 * micro-ops surviving at the narrower scopes.
 *
 *   $ build/examples/crafty_procedure
 */

#include <cstdio>

#include "opt/optimizer.hh"
#include "x86/disasm.hh"

using namespace replay;
using namespace replay::uop;
using x86::Cond;

namespace {

/** The seventeen micro-operations of Figure 2 (two basic blocks). */
std::pair<std::vector<Uop>, std::vector<uint16_t>>
figure2()
{
    auto alu = [](Op op, UReg dst, UReg a, UReg bsrc, bool flags) {
        Uop u;
        u.op = op;
        u.dst = dst;
        u.srcA = a;
        u.srcB = bsrc;
        u.writesFlags = flags;
        return u;
    };
    auto alui = [](Op op, UReg dst, UReg a, int32_t imm, bool flags) {
        Uop u;
        u.op = op;
        u.dst = dst;
        u.srcA = a;
        u.imm = imm;
        u.writesFlags = flags;
        return u;
    };
    auto load = [](UReg dst, UReg base, int32_t disp) {
        Uop u;
        u.op = Op::LOAD;
        u.dst = dst;
        u.srcA = base;
        u.imm = disp;
        return u;
    };
    auto store = [](UReg base, int32_t disp, UReg value) {
        Uop u;
        u.op = Op::STORE;
        u.srcA = base;
        u.imm = disp;
        u.srcB = value;
        return u;
    };

    std::vector<Uop> u;
    // PUSH EBP; PUSH EBX
    u.push_back(store(UReg::ESP, -4, UReg::EBP));               // 01
    u.push_back(alui(Op::SUB, UReg::ESP, UReg::ESP, 4, false)); // 02
    u.push_back(store(UReg::ESP, -4, UReg::EBX));               // 03
    u.push_back(alui(Op::SUB, UReg::ESP, UReg::ESP, 4, false)); // 04
    // MOV ECX,[ESP+0CH]; MOV EBX,[ESP+10H]
    u.push_back(load(UReg::ECX, UReg::ESP, 0x0c));              // 05
    u.push_back(load(UReg::EBX, UReg::ESP, 0x10));              // 06
    // XOR EAX,EAX
    u.push_back(alu(Op::XOR, UReg::EAX, UReg::EAX, UReg::EAX,
                    true));                                     // 07
    // MOV EDX,ECX; OR EDX,EBX
    {
        Uop mov;
        mov.op = Op::MOV;
        mov.dst = UReg::EDX;
        mov.srcA = UReg::ECX;
        u.push_back(mov);                                       // 08
    }
    u.push_back(alu(Op::OR, UReg::EDX, UReg::EDX, UReg::EBX,
                    true));                                     // 09
    // JZ Block2, typically taken -> assertion
    {
        Uop assert_uop;
        assert_uop.op = Op::ASSERT;
        assert_uop.cc = Cond::E;
        assert_uop.readsFlags = true;
        u.push_back(assert_uop);                                // 10
    }
    // POP EBX; POP EBP; RET
    u.push_back(alui(Op::ADD, UReg::ESP, UReg::ESP, 4, false)); // 11
    u.push_back(load(UReg::EBX, UReg::ESP, -4));                // 12
    u.push_back(alui(Op::ADD, UReg::ESP, UReg::ESP, 4, false)); // 13
    u.push_back(load(UReg::EBP, UReg::ESP, -4));                // 14
    u.push_back(load(UReg::ET2, UReg::ESP, 0));                 // 15
    u.push_back(alui(Op::ADD, UReg::ESP, UReg::ESP, 4, false)); // 16
    {
        Uop jmp;
        jmp.op = Op::JMPI;
        jmp.srcA = UReg::ET2;
        u.push_back(jmp);                                       // 17
    }

    std::vector<uint16_t> blocks(u.size(), 0);
    for (size_t i = 10; i < u.size(); ++i)
        blocks[i] = 1;      // Block2 starts at the POPs
    return {u, blocks};
}

void
dump(const char *title, const opt::OptimizedFrame &frame)
{
    std::printf("%s (%u micro-ops, %u loads):\n", title,
                frame.numUops(), frame.outputLoads);
    for (const opt::FrameUop fu : frame)
        std::printf("  %s\n", uop::format(fu.uop).c_str());
    std::printf("\n");
}

} // namespace

int
main()
{
    const auto [uops, blocks] = figure2();

    std::printf("Figure 2, unoptimized micro-operations (17):\n");
    for (const auto &u : uops)
        std::printf("  %s\n", format(u).c_str());
    std::printf("\n");

    opt::OptStats stats;

    // Intra-block optimization (the paper's third column).
    opt::OptConfig block_cfg;
    block_cfg.scope = opt::Scope::BLOCK;
    const auto block_frame =
        opt::Optimizer(block_cfg).optimize(uops, blocks, nullptr, stats);
    dump("intra-block optimization", block_frame);

    // Inter-block optimization (fourth column: single entry, multiple
    // exits — the EBP restore forwards, the EBX restore cannot).
    opt::OptConfig inter_cfg;
    inter_cfg.scope = opt::Scope::INTER_BLOCK;
    const auto inter_frame =
        opt::Optimizer(inter_cfg).optimize(uops, blocks, nullptr, stats);
    dump("inter-block optimization", inter_frame);

    // Frame-level optimization (the rightmost column).
    const auto frame =
        opt::Optimizer().optimize(uops, blocks, nullptr, stats);
    dump("frame-level optimization", frame);

    std::printf("paper: \"seven of the seventeen micro-operations are "
                "removed,\n        including two of the five loads\"\n");
    std::printf("here:  %u of 17 removed, %u of 5 loads removed\n",
                17 - frame.numUops(), 5 - frame.outputLoads);
    return 0;
}
