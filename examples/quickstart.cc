/**
 * @file
 * Quickstart: the whole pipeline on ten lines of x86.
 *
 * Builds a small x86 program with the assembler, decodes it into
 * rePLay micro-operations, promotes its biased branch into an
 * assertion, optimizes the frame, and executes both versions to show
 * they transform architectural state identically.
 *
 *   $ build/examples/quickstart
 */

#include <cstdio>

#include "opt/frameexec.hh"
#include "opt/optimizer.hh"
#include "uop/evaluator.hh"
#include "uop/translator.hh"
#include "x86/asmbuilder.hh"
#include "x86/disasm.hh"

using namespace replay;
using x86::Cond;
using x86::memAt;
using x86::Reg;

int
main()
{
    // ---- 1. Write a little x86 procedure -----------------------------
    x86::AsmBuilder b;
    const uint32_t data = b.dataRegion("data", 256);
    b.dataWords("data", {5, 7});

    b.movRI(Reg::ESI, int32_t(data));
    b.pushR(Reg::EBP);              // stack traffic the optimizer loves
    b.pushR(Reg::EBX);
    b.movRM(Reg::EAX, memAt(Reg::ESI, 0));
    b.addRM(Reg::EAX, memAt(Reg::ESI, 0));  // redundant load
    b.movRM(Reg::EBX, memAt(Reg::ESI, 4));
    b.addRR(Reg::EAX, Reg::EBX);
    b.movMR(memAt(Reg::ESI, 8), Reg::EAX);
    b.cmpRI(Reg::EAX, 0);
    b.jcc(Cond::NE, "cont");        // always taken here: biased
    b.nop();
    b.label("cont");
    b.popR(Reg::EBX);
    b.popR(Reg::EBP);
    b.label("end");
    b.jmp("end");
    const x86::Program prog = b.build();

    // ---- 2. Decode into rePLay micro-operations -----------------------
    uop::Translator translator;
    std::vector<uop::Uop> uops;
    std::printf("x86 instructions and their decode flows:\n");
    uint32_t pc = prog.entry();
    uint16_t inst_idx = 0;
    while (pc != b.addrOf("end")) {
        const auto &placed = prog.at(pc);
        std::printf("  %s\n", x86::disassemble(placed.inst).c_str());
        const size_t first = uops.size();
        translator.translate(placed.inst, pc, pc + placed.length, uops);
        for (size_t i = first; i < uops.size(); ++i) {
            uops[i].instIdx = inst_idx;
            std::printf("      %s\n", uop::format(uops[i]).c_str());
        }
        // Follow the (taken) path like the frame constructor would.
        pc = placed.inst.isCondBranch() ? placed.inst.target
                                        : pc + placed.length;
        ++inst_idx;
    }

    // ---- 3. Promote the biased branch into an assertion ----------------
    for (auto &u : uops) {
        if (u.op == uop::Op::BR) {
            u.op = uop::Op::ASSERT;
            u.target = 0;
        }
    }

    // ---- 4. Optimize the frame ------------------------------------------
    opt::Optimizer optimizer;           // all seven optimizations
    opt::OptStats stats;
    const auto frame = optimizer.optimize(uops, {}, nullptr, stats);

    std::printf("\noptimized frame (%u -> %u micro-ops, "
                "%u -> %u loads):\n",
                frame.inputUops, frame.numUops(), frame.inputLoads,
                frame.outputLoads);
    for (const opt::FrameUop fu : frame)
        std::printf("  %s\n", uop::format(fu.uop).c_str());

    // ---- 5. Execute both and compare the state transformation ---------
    x86::SparseMemory ref_mem, opt_mem;
    for (const auto &seg : prog.data()) {
        ref_mem.loadSegment(seg);
        opt_mem.loadSegment(seg);
    }

    uop::Evaluator reference(ref_mem);
    reference.setReg(uop::UReg::ESP, prog.stackTop());
    for (const auto &u : uops)
        reference.exec(u);

    opt::ArchState state;
    state.regs[unsigned(uop::UReg::ESP)] = prog.stackTop();
    const auto result = opt::executeFrame(frame, state, opt_mem);

    std::printf("\nframe execution: %s\n",
                result.committed() ? "committed" : "rolled back");
    std::printf("EAX  reference=%u  optimized=%u\n",
                reference.reg(uop::UReg::EAX),
                state.regs[unsigned(uop::UReg::EAX)]);
    std::printf("[data+8]  reference=%u  optimized=%u\n",
                ref_mem.read(data + 8, 4), opt_mem.read(data + 8, 4));
    return 0;
}
