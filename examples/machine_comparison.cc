/**
 * @file
 * Run one application through all four machine configurations (the
 * Figure 6 flow for a single workload) and print the full statistics:
 * IPC, cycle breakdown, frame coverage, optimization counters.
 *
 *   $ build/examples/machine_comparison [workload] [insts]
 *   $ build/examples/machine_comparison vortex 500000
 */

#include <cstdio>
#include <cstdlib>

#include "sim/runner.hh"
#include "util/table.hh"

using namespace replay;
using timing::CycleBin;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "crafty";
    const uint64_t insts =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 300000;

    const auto &workload = trace::findWorkload(name);
    std::printf("workload %s (%s, %u hot-spot trace%s), %llu x86 "
                "insts per trace\n\n",
                workload.name.c_str(), trace::appTypeName(workload.type),
                workload.numTraces, workload.numTraces > 1 ? "s" : "",
                (unsigned long long)insts);

    TextTable table;
    table.header({"machine", "IPC", "cycles", "coverage", "uopRed",
                  "loadRed", "commits", "aborts", "mispredicts"});
    for (const auto machine :
         {sim::Machine::IC, sim::Machine::TC, sim::Machine::RP,
          sim::Machine::RPO}) {
        const auto r = sim::runWorkload(
            workload, sim::SimConfig::make(machine), insts);
        table.row({r.config, TextTable::fixed(r.ipc(), 3),
                   std::to_string(r.cycles()),
                   TextTable::percent(r.coverage(), 0),
                   TextTable::percent(r.uopReduction(), 0),
                   TextTable::percent(r.loadReduction(), 0),
                   std::to_string(r.frameCommits),
                   std::to_string(r.frameAborts),
                   std::to_string(r.mispredicts)});
    }
    std::printf("%s\n", table.render().c_str());

    // Cycle breakdown of the optimizing configuration.
    const auto rpo = sim::runWorkload(
        workload, sim::SimConfig::make(sim::Machine::RPO), insts);
    std::printf("RPO cycle breakdown:\n");
    for (unsigned bin = 0; bin < timing::NUM_CYCLE_BINS; ++bin) {
        const auto b = static_cast<CycleBin>(bin);
        std::printf("  %-8s %6.2f%%\n", timing::cycleBinName(b),
                    100.0 * double(rpo.bins.get(b)) /
                        double(rpo.cycles()));
    }

    const auto &o = rpo.optStats;
    std::printf("\noptimizer activity (%llu frames):\n",
                (unsigned long long)o.framesOptimized);
    std::printf("  nops removed        %llu\n",
                (unsigned long long)o.nopsRemoved);
    std::printf("  asserts combined    %llu\n",
                (unsigned long long)o.assertsCombined);
    std::printf("  constants folded    %llu\n",
                (unsigned long long)o.constantsFolded);
    std::printf("  copies propagated   %llu\n",
                (unsigned long long)o.copiesPropagated);
    std::printf("  reassociations      %llu\n",
                (unsigned long long)o.reassociations);
    std::printf("  CSE removals        %llu (loads: %llu)\n",
                (unsigned long long)o.cseRemoved,
                (unsigned long long)o.loadsCseRemoved);
    std::printf("  loads forwarded     %llu (speculative: %llu)\n",
                (unsigned long long)o.loadsForwarded,
                (unsigned long long)o.speculativeLoadsRemoved);
    std::printf("  unsafe stores       %llu\n",
                (unsigned long long)o.unsafeStoresMarked);
    std::printf("  dead code removed   %llu\n",
                (unsigned long long)o.deadRemoved);
    return 0;
}
