/**
 * @file
 * Define a custom workload personality, synthesize its program, build
 * and verify frames against the state verifier, and measure the
 * optimizer's benefit on it — the full library API without any of the
 * fourteen canned applications.
 *
 *   $ build/examples/custom_workload
 */

#include <cstdio>
#include <algorithm>
#include <cstring>

#include "core/aliasprofile.hh"
#include "core/constructor.hh"
#include "sim/simulator.hh"
#include "trace/workload.hh"
#include "verify/verifier.hh"

using namespace replay;

namespace {

opt::ArchState
snapshot(const x86::Executor &exec)
{
    opt::ArchState st;
    for (unsigned r = 0; r < 8; ++r)
        st.regs[r] = exec.reg(static_cast<x86::Reg>(r));
    for (unsigned f = 0; f < 8; ++f) {
        uint32_t raw;
        const float v = exec.freg(static_cast<x86::FReg>(f));
        std::memcpy(&raw, &v, 4);
        st.regs[unsigned(uop::fpr(static_cast<x86::FReg>(f)))] = raw;
    }
    st.flags = exec.flags();
    return st;
}

} // namespace

int
main()
{
    // ---- 1. Describe an application -----------------------------------
    trace::Personality p;
    p.seed = 20260705;
    p.numHotProcs = 6;
    p.segmentsPerProc = 8;
    p.redundantLoadRate = 0.5;      // plenty of removable loads
    p.aliasSegRate = 0.05;          // a little unsafe-store aliasing
    p.biasBits = 8;
    p.fpSegRate = 0.1;
    p.dataKB = 32;

    const x86::Program prog = trace::synthesizeProgram(p);
    std::printf("synthesized program: %zu instructions, %u code bytes\n",
                prog.code().size(), prog.codeBytes());

    // ---- 2. Build frames from its retired stream and verify each -----
    x86::Executor exec(prog);
    core::FrameConstructor ctor;
    core::AliasProfile profile;
    opt::Optimizer optimizer;
    opt::OptStats stats;

    std::vector<opt::ArchState> ring(512);
    uint64_t retired = 0;
    unsigned verified = 0, failed = 0;
    for (unsigned i = 0; i < 60000; ++i) {
        ring[retired % ring.size()] = snapshot(exec);
        const auto rec = trace::TraceRecord::fromStep(exec.step());
        ++retired;
        auto cand = ctor.observe(rec);
        if (!cand)
            continue;
        const size_t n = cand->records.size();
        const uint64_t end =
            retired - (cand->closedByIncludedInst ? 0 : 1);
        if (end < n || n > ring.size())
            continue;

        const auto body = optimizer.optimize(cand->uops, cand->blocks,
                                             &profile, stats);
        profile.observeInstance(cand->records);

        core::Frame frame;
        frame.startPc = cand->startPc;
        frame.pcs = cand->pcs;
        frame.nextPc = cand->nextPc;
        frame.dynamicExit = cand->dynamicExit;
        frame.body = body;
        for (const opt::FrameUop fu : frame.body) {
            if (fu.unsafe && fu.uop.isStore())
                frame.unsafeStores.push_back(
                    {fu.uop.instIdx, fu.uop.memSeq});
        }
        std::sort(frame.unsafeStores.begin(), frame.unsafeStores.end());

        const auto result = verify::verifyFrame(
            frame, cand->records, ring[(end - n) % ring.size()]);
        if (result.ok)
            ++verified;
        else {
            ++failed;
            std::printf("  VERIFY FAIL @0x%08x: %s\n", frame.startPc,
                        result.message.c_str());
        }
    }
    std::printf("state verifier: %u frames verified, %u failed\n",
                verified, failed);
    std::printf("optimizer: %.1f%% of micro-ops removed, %.1f%% of "
                "loads (%llu unsafe stores marked)\n\n",
                stats.uopReduction() * 100, stats.loadReduction() * 100,
                (unsigned long long)stats.unsafeStoresMarked);

    // ---- 3. And the end-to-end timing effect ---------------------------
    for (const auto machine : {sim::Machine::RP, sim::Machine::RPO}) {
        auto cfg = sim::SimConfig::make(machine);
        auto src = std::make_unique<trace::ExecutorTraceSource>(
            prog, 200000);
        const auto r = sim::simulateTrace(cfg, *src, "custom");
        std::printf("%-3s  IPC %.3f  (coverage %.0f%%, %llu commits, "
                    "%llu aborts)\n",
                    r.config.c_str(), r.ipc(), r.coverage() * 100,
                    (unsigned long long)r.frameCommits,
                    (unsigned long long)r.frameAborts);
    }
    return 0;
}
